// Deterministic fault-schedule generation for the robustness harness.
//
// The paper's recovery story (§III-C: re-running the Fig. 4 cover when an
// OPS dies) only matters if failures actually arrive — interleaved with
// chain traffic, overlapping each other, and eventually healing. This
// module produces those schedules three ways:
//
//   * Stochastic: every element of a class (OPS / ToR / server / ToR-OPS
//     link) follows an alternating-renewal process — exponential up-times
//     with the class's MTBF alternate with exponential down-times with its
//     MTTR. Each element draws from its own seeded substream, so a schedule
//     is a pure function of (topology, params) and is stable when other
//     classes are toggled on or off.
//   * Scripted: callers hand-build FaultEvent vectors for exact scenarios.
//   * Correlated: helpers for shared-fate modes — a whole rack (the ToR
//     plus every server behind it) or a whole AL (every OPS one cluster
//     owns) failing at the same instant.
//
// Schedules feed `sim::EventQueue`, so failures and repairs interleave
// deterministically with whatever else the simulation has scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "nfv/nfc.h"
#include "sim/event_queue.h"
#include "topology/topology.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::orchestrator {
class NetworkOrchestrator;
}  // namespace alvc::orchestrator

namespace alvc::faults {

/// Which hardware class an event touches.
enum class FaultKind : std::uint8_t { kOps, kTor, kServer, kLink };

[[nodiscard]] constexpr const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOps: return "ops";
    case FaultKind::kTor: return "tor";
    case FaultKind::kServer: return "server";
    case FaultKind::kLink: return "link";
  }
  return "?";
}

/// One failure or repair at a point in simulated time.
struct FaultEvent {
  double time_s = 0;
  FaultKind kind = FaultKind::kOps;
  bool failure = true;  // false = repair
  /// Element id: the OPS/ToR/server index; for kLink, the ToR endpoint.
  std::uint32_t id = 0;
  /// kLink only: the OPS endpoint of the failing uplink.
  std::uint32_t ops = 0;
};

/// Alternating-renewal parameters for one element class. mtbf_s <= 0
/// disables the class; mttr_s <= 0 makes its failures permanent (no
/// repair is ever scheduled).
struct ElementRates {
  double mtbf_s = 0;
  double mttr_s = 0;
};

struct FaultScheduleParams {
  ElementRates ops;
  ElementRates tor;
  ElementRates server;
  ElementRates link;
  double horizon_s = 0;  // events strictly before this time
  std::uint64_t seed = 1;
};

/// Threading contract: stateless; `generate` is a pure function of its
/// arguments (const topology read + explicit seed) and is safe to call
/// from any number of threads concurrently.
class FaultInjector {
 public:
  /// Generates the full stochastic schedule over `topo`, sorted by time
  /// (ties broken by generation order: class, then element index — stable
  /// across runs).
  [[nodiscard]] static std::vector<FaultEvent> generate(
      const alvc::topology::DataCenterTopology& topo, const FaultScheduleParams& params);

  /// Correlated mode: the rack behind `tor` (the ToR plus every server in
  /// it) fails at `at` and recovers together at `at + outage_s`.
  [[nodiscard]] static std::vector<FaultEvent> whole_rack(
      const alvc::topology::DataCenterTopology& topo, alvc::util::TorId tor, double at,
      double outage_s);

  /// Correlated mode: every OPS of `cluster`'s AL fails at `at`; repairs
  /// start at `at + outage_s`, staggered by `stagger_s` per OPS so the AL
  /// re-forms incrementally.
  [[nodiscard]] static std::vector<FaultEvent> whole_al(const alvc::cluster::VirtualCluster& cluster,
                                                        double at, double outage_s,
                                                        double stagger_s = 0);

  /// Feeds `events` into `queue` so `apply` fires at each scheduled time,
  /// interleaved with whatever else the queue holds.
  static void schedule(alvc::sim::EventQueue& queue, std::vector<FaultEvent> events,
                       std::function<void(const FaultEvent&)> apply);
};

/// One provision or teardown at a point in simulated time — the load-side
/// twin of FaultEvent, so overload scenarios interleave with fault
/// schedules on the same EventQueue.
struct LoadEvent {
  double time_s = 0;
  bool provision = true;  // false = tear down whatever `key` provisioned
  /// Correlation cookie: a teardown refers to the provision that carried
  /// the same key (the runner maps keys to live chain ids).
  std::uint32_t key = 0;
  /// provision only: the chain to ask for.
  alvc::nfv::NfcSpec spec;
};

/// Deterministic overload-scenario generation, sharing FaultInjector's
/// seeded-schedule machinery. Threading contract: stateless, pure
/// functions of their arguments.
class OverloadInjector {
 public:
  /// Flash crowd: every spec arrives in a burst starting at `at`, spaced
  /// `spacing_s` apart, and (when hold_s > 0) all depart together
  /// `hold_s` after the last arrival. Keys are first_key, first_key+1, ...
  [[nodiscard]] static std::vector<LoadEvent> flash_crowd(
      std::span<const alvc::nfv::NfcSpec> specs, double at, double spacing_s, double hold_s,
      std::uint32_t first_key = 0);

  /// Diurnal ramp: each period, the specs arrive one by one through the
  /// first half of the period and depart one by one through the second
  /// half — sustained oscillating oversubscription. Cycles repeat until
  /// `horizon_s`. Keys are unique per (cycle, spec).
  [[nodiscard]] static std::vector<LoadEvent> diurnal_ramp(
      std::span<const alvc::nfv::NfcSpec> specs, double period_s, double horizon_s,
      std::uint32_t first_key = 0);

  /// Adversarial LOPRI churn: Poisson arrivals at `rate_per_s` (seeded,
  /// deterministic), each a uniformly drawn spec forced to kLopri, holding
  /// for `hold_s` before departing. Pressure comes and goes fast enough to
  /// keep the allocator shedding and restoring.
  [[nodiscard]] static std::vector<LoadEvent> lopri_churn(
      std::span<const alvc::nfv::NfcSpec> specs, double rate_per_s, double hold_s,
      double horizon_s, std::uint64_t seed, std::uint32_t first_key = 0);

  /// Feeds `events` into `queue` so `apply` fires at each scheduled time,
  /// mirroring FaultInjector::schedule.
  static void schedule(alvc::sim::EventQueue& queue, std::vector<LoadEvent> events,
                       std::function<void(const LoadEvent&)> apply);
};

/// Dispatches one event to the orchestrator's matching failure/recovery
/// handler. Returns the handler's result (chains touched); duplicate
/// injections are idempotent and return 0.
alvc::util::Expected<std::size_t> apply_fault(alvc::orchestrator::NetworkOrchestrator& orch,
                                              const FaultEvent& event);

}  // namespace alvc::faults
