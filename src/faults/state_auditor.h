// Cross-layer invariant checker for the fault-injection harness.
//
// After every injected failure or repair the whole control plane must stay
// self-consistent: ALs keep the paper's exclusivity property, nothing runs
// on dead hardware, the SDN tables only forward over live links, and the
// bandwidth ledger never promises more than the fabric has. The auditor
// re-derives each invariant from primary state (topology flags, cluster
// ownership, flow tables, reservations) rather than trusting any cached
// counters, so a bug in one layer cannot hide a bug in another.
#pragma once

#include <string>
#include <vector>

#include "orchestrator/orchestrator.h"

namespace alvc::faults {

/// Threading contract: stateless; `audit` only reads the orchestrator and
/// must not run concurrently with a mutation of it — callers provide the
/// same external synchronization the orchestrator itself requires.
class StateAuditor {
 public:
  /// Runs every invariant; returns human-readable violations (empty means
  /// the control plane is consistent). Checks:
  ///   * cluster invariants — one-AL-per-OPS, coverage, no failed hardware
  ///     inside any AL (ClusterManager::check_invariants);
  ///   * slice isolation — no AL shared between chains (check_isolation);
  ///   * placement — every live VNF instance sits on usable hardware;
  ///   * chain state — healthy chains hold exactly their demanded
  ///     bandwidth with all instances live; degraded chains carry a reason;
  ///   * routes — every route vertex is usable, every hop is a live edge
  ///     of the current switch graph;
  ///   * flow tables — every installed rule belongs to a live chain and
  ///     forwards over a live link;
  ///   * route cache — every cached path the cache would serve under the
  ///     current slice state walks live, in-slice hardware
  ///     (RouteCache::check_coherence);
  ///   * bandwidth — every reservation fits its link's capacity and rides
  ///     a live link;
  ///   * slice capacity — per slice, the sum of reservations on its
  ///     ToR-OPS uplinks never exceeds the slice's live aggregate uplink
  ///     capacity (ClusterManager::slice_uplink_capacity_gbps);
  ///   * work conservation (QoS policies only) — a chain short of its
  ///     demand must be blocked on at least one of its resources (route
  ///     links + ToR budgets, mirroring the allocator's model); it must
  ///     not sit below a rung every resource could comfortably carry;
  ///   * priority-feasibility (kPriorityDowngrade only) — a HIPRI chain
  ///     short of its demand must be blocked even with every LOPRI
  ///     reservation excluded: LOPRI never holds capacity a degraded
  ///     HIPRI could use.
  [[nodiscard]] static std::vector<std::string> audit(
      const alvc::orchestrator::NetworkOrchestrator& orch);
};

}  // namespace alvc::faults
