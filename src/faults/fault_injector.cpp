#include "faults/fault_injector.h"

#include <algorithm>
#include <utility>

#include "orchestrator/orchestrator.h"
#include "sim/waveform.h"
#include "util/rng.h"

namespace alvc::faults {

using alvc::topology::DataCenterTopology;
using alvc::util::Expected;
using alvc::util::OpsId;
using alvc::util::Rng;
using alvc::util::ServerId;
using alvc::util::TorId;

namespace {

/// Per-element substream seed: splitmix-style scrambling keeps streams
/// independent even for adjacent (class, index) pairs.
std::uint64_t substream(std::uint64_t seed, FaultKind kind, std::size_t index) {
  std::uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(kind) + 1);
  x ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(index) + 1);
  x ^= x >> 31;
  return x;
}

/// Emits one element's alternating up/down renewal process into `out`.
template <typename EmitFn>
void renewal_process(const ElementRates& rates, double horizon_s, Rng& rng, EmitFn&& emit) {
  double t = rng.exponential(1.0 / rates.mtbf_s);
  while (t < horizon_s) {
    emit(t, /*failure=*/true);
    if (rates.mttr_s <= 0) return;  // permanent fault
    const double down = rng.exponential(1.0 / rates.mttr_s);
    if (t + down >= horizon_s) return;  // repair falls past the horizon
    t += down;
    emit(t, /*failure=*/false);
    t += rng.exponential(1.0 / rates.mtbf_s);
  }
}

}  // namespace

std::vector<FaultEvent> FaultInjector::generate(const DataCenterTopology& topo,
                                                const FaultScheduleParams& params) {
  std::vector<FaultEvent> events;
  if (params.horizon_s <= 0) return events;

  const auto emit_class = [&](FaultKind kind, const ElementRates& rates, std::size_t count,
                              auto&& endpoints) {
    if (rates.mtbf_s <= 0) return;
    for (std::size_t i = 0; i < count; ++i) {
      Rng rng(substream(params.seed, kind, i));
      renewal_process(rates, params.horizon_s, rng, [&](double t, bool failure) {
        const auto [id, ops] = endpoints(i);
        events.push_back(FaultEvent{.time_s = t, .kind = kind, .failure = failure, .id = id, .ops = ops});
      });
    }
  };

  emit_class(FaultKind::kOps, params.ops, topo.ops_count(),
             [](std::size_t i) { return std::pair{static_cast<std::uint32_t>(i), 0u}; });
  emit_class(FaultKind::kTor, params.tor, topo.tor_count(),
             [](std::size_t i) { return std::pair{static_cast<std::uint32_t>(i), 0u}; });
  emit_class(FaultKind::kServer, params.server, topo.server_count(),
             [](std::size_t i) { return std::pair{static_cast<std::uint32_t>(i), 0u}; });

  // Links are enumerated in (ToR, uplink) order so the flat index is stable.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  for (const auto& tor : topo.tors()) {
    for (OpsId ops : tor.uplinks) {
      links.emplace_back(static_cast<std::uint32_t>(tor.id.value()),
                         static_cast<std::uint32_t>(ops.value()));
    }
  }
  emit_class(FaultKind::kLink, params.link, links.size(),
             [&](std::size_t i) { return links[i]; });

  // Stable sort keeps the per-element generation order on time ties, so the
  // schedule is deterministic in (topology, params) alone.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time_s < b.time_s; });
  return events;
}

std::vector<FaultEvent> FaultInjector::whole_rack(const DataCenterTopology& topo, TorId tor,
                                                  double at, double outage_s) {
  std::vector<FaultEvent> events;
  const auto tor_id = static_cast<std::uint32_t>(tor.value());
  events.push_back(FaultEvent{.time_s = at, .kind = FaultKind::kTor, .failure = true, .id = tor_id});
  for (ServerId s : topo.tor(tor).servers) {
    events.push_back(FaultEvent{.time_s = at,
                                .kind = FaultKind::kServer,
                                .failure = true,
                                .id = static_cast<std::uint32_t>(s.value())});
  }
  events.push_back(
      FaultEvent{.time_s = at + outage_s, .kind = FaultKind::kTor, .failure = false, .id = tor_id});
  for (ServerId s : topo.tor(tor).servers) {
    events.push_back(FaultEvent{.time_s = at + outage_s,
                                .kind = FaultKind::kServer,
                                .failure = false,
                                .id = static_cast<std::uint32_t>(s.value())});
  }
  return events;
}

std::vector<FaultEvent> FaultInjector::whole_al(const alvc::cluster::VirtualCluster& cluster,
                                                double at, double outage_s, double stagger_s) {
  std::vector<FaultEvent> events;
  for (OpsId ops : cluster.layer.opss) {
    events.push_back(FaultEvent{.time_s = at,
                                .kind = FaultKind::kOps,
                                .failure = true,
                                .id = static_cast<std::uint32_t>(ops.value())});
  }
  double repair_at = at + outage_s;
  for (OpsId ops : cluster.layer.opss) {
    events.push_back(FaultEvent{.time_s = repair_at,
                                .kind = FaultKind::kOps,
                                .failure = false,
                                .id = static_cast<std::uint32_t>(ops.value())});
    repair_at += stagger_s;
  }
  return events;
}

void FaultInjector::schedule(alvc::sim::EventQueue& queue, std::vector<FaultEvent> events,
                             std::function<void(const FaultEvent&)> apply) {
  for (FaultEvent& event : events) {
    queue.schedule(event.time_s, [event, apply]() { apply(event); });
  }
}

std::vector<LoadEvent> OverloadInjector::flash_crowd(std::span<const alvc::nfv::NfcSpec> specs,
                                                     double at, double spacing_s, double hold_s,
                                                     std::uint32_t first_key) {
  std::vector<LoadEvent> events;
  events.reserve(specs.size() * 2);
  const auto arrivals = alvc::sim::burst_arrival_times(specs.size(), at, spacing_s);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    events.push_back(LoadEvent{
        .time_s = arrivals[i], .provision = true,
        .key = first_key + static_cast<std::uint32_t>(i), .spec = specs[i]});
  }
  if (hold_s > 0 && !arrivals.empty()) {
    const double departure = arrivals.back() + hold_s;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      events.push_back(LoadEvent{.time_s = departure,
                                 .provision = false,
                                 .key = first_key + static_cast<std::uint32_t>(i)});
    }
  }
  return events;
}

std::vector<LoadEvent> OverloadInjector::diurnal_ramp(std::span<const alvc::nfv::NfcSpec> specs,
                                                      double period_s, double horizon_s,
                                                      std::uint32_t first_key) {
  std::vector<LoadEvent> events;
  if (specs.empty() || period_s <= 0 || horizon_s <= 0) return events;
  const double slot = alvc::sim::diurnal_slot_s(period_s, specs.size());
  std::uint32_t key = first_key;
  for (std::size_t cycle = 0;; ++cycle) {
    const double start = static_cast<double>(cycle) * period_s;
    if (start >= horizon_s) break;
    for (std::size_t i = 0; i < specs.size(); ++i, ++key) {
      const double up = alvc::sim::diurnal_up_s(start, slot, i);
      const double down = alvc::sim::diurnal_down_s(start, period_s, slot, i);
      if (up >= horizon_s) break;
      events.push_back(LoadEvent{.time_s = up, .provision = true, .key = key, .spec = specs[i]});
      if (down < horizon_s) {
        events.push_back(LoadEvent{.time_s = down, .provision = false, .key = key});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const LoadEvent& a, const LoadEvent& b) { return a.time_s < b.time_s; });
  return events;
}

std::vector<LoadEvent> OverloadInjector::lopri_churn(std::span<const alvc::nfv::NfcSpec> specs,
                                                     double rate_per_s, double hold_s,
                                                     double horizon_s, std::uint64_t seed,
                                                     std::uint32_t first_key) {
  std::vector<LoadEvent> events;
  if (specs.empty() || rate_per_s <= 0 || horizon_s <= 0) return events;
  Rng rng(seed);
  std::uint32_t key = first_key;
  // The spec pick draws from the same stream *between* inter-arrival draws;
  // poisson_arrivals preserves that order (see sim/waveform.h).
  alvc::sim::poisson_arrivals(rng, rate_per_s, horizon_s, [&](double t) {
    alvc::nfv::NfcSpec spec = specs[rng.uniform_index(specs.size())];
    spec.priority = alvc::nfv::PriorityClass::kLopri;
    events.push_back(LoadEvent{.time_s = t, .provision = true, .key = key, .spec = std::move(spec)});
    if (hold_s > 0 && t + hold_s < horizon_s) {
      events.push_back(LoadEvent{.time_s = t + hold_s, .provision = false, .key = key});
    }
    ++key;
  });
  std::stable_sort(events.begin(), events.end(),
                   [](const LoadEvent& a, const LoadEvent& b) { return a.time_s < b.time_s; });
  return events;
}

void OverloadInjector::schedule(alvc::sim::EventQueue& queue, std::vector<LoadEvent> events,
                                std::function<void(const LoadEvent&)> apply) {
  for (LoadEvent& event : events) {
    queue.schedule(event.time_s, [event, apply]() { apply(event); });
  }
}

Expected<std::size_t> apply_fault(alvc::orchestrator::NetworkOrchestrator& orch,
                                  const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kOps:
      return event.failure ? orch.handle_ops_failure(OpsId{event.id})
                           : orch.handle_ops_recovery(OpsId{event.id});
    case FaultKind::kTor:
      return event.failure ? orch.handle_tor_failure(TorId{event.id})
                           : orch.handle_tor_recovery(TorId{event.id});
    case FaultKind::kServer:
      return event.failure ? orch.handle_server_failure(ServerId{event.id})
                           : orch.handle_server_recovery(ServerId{event.id});
    case FaultKind::kLink:
      return event.failure ? orch.handle_link_failure(TorId{event.id}, OpsId{event.ops})
                           : orch.handle_link_recovery(TorId{event.id}, OpsId{event.ops});
  }
  return alvc::util::Error{alvc::util::ErrorCode::kInvalidArgument, "unknown fault kind"};
}

}  // namespace alvc::faults
