#include "orchestrator/routing.h"

#include <algorithm>
#include <limits>

#include "graph/k_shortest.h"
#include "graph/shortest_path.h"

namespace alvc::orchestrator {

using alvc::nfv::HostRef;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;

namespace routing_detail {

void slice_vertices(const alvc::topology::DataCenterTopology& topo,
                    const alvc::cluster::VirtualCluster& cluster,
                    std::span<const std::size_t> extras, alvc::graph::VertexSet& allowed) {
  allowed.reset(topo.switch_graph().vertex_count());
  for (TorId t : cluster.layer.tors) allowed.insert(topo.tor_vertex(t));
  for (OpsId o : cluster.layer.opss) allowed.insert(topo.ops_vertex(o));
  for (std::size_t v : extras) allowed.insert(v);
}

alvc::util::Expected<std::vector<std::size_t>> route_leg(
    const alvc::topology::DataCenterTopology& topo, const alvc::graph::VertexSet& allowed,
    std::size_t from, std::size_t to, std::size_t leg_index) {
  if (from == to) return std::vector<std::size_t>{from};
  auto path = alvc::graph::bfs_path_to(topo.switch_graph(), from, to, allowed);
  if (!path) {
    return Error{ErrorCode::kInfeasible,
                 "no slice-internal path for leg " + std::to_string(leg_index)};
  }
  return std::move(*path);
}

}  // namespace routing_detail

namespace {

using routing_detail::route_leg;
using routing_detail::slice_vertices;

/// Concatenates legs into the walk and tallies hop domains.
void finish_route(const alvc::topology::DataCenterTopology& topo, ChainRoute& route) {
  for (const auto& leg : route.legs) {
    for (std::size_t v : leg) {
      if (route.vertices.empty() || route.vertices.back() != v) route.vertices.push_back(v);
    }
  }
  for (std::size_t i = 0; i + 1 < route.vertices.size(); ++i) {
    const bool both_optical = topo.is_ops_vertex(route.vertices[i]) &&
                              topo.is_ops_vertex(route.vertices[i + 1]);
    if (both_optical) {
      ++route.optical_hops;
    } else {
      ++route.electronic_hops;
    }
  }
}

}  // namespace

std::size_t ChainRouter::attach_vertex(const HostRef& host) const {
  if (const auto* server = std::get_if<ServerId>(&host)) {
    return topo_->tor_vertex(topo_->server(*server).tor);
  }
  return topo_->ops_vertex(std::get<OpsId>(host));
}

std::vector<std::size_t> ChainRouter::chain_stops(TorId ingress, TorId egress,
                                                  std::span<const HostRef> hosts) const {
  std::vector<std::size_t> stops;
  stops.reserve(hosts.size() + 2);
  stops.push_back(topo_->tor_vertex(ingress));
  for (const HostRef& host : hosts) stops.push_back(attach_vertex(host));
  stops.push_back(topo_->tor_vertex(egress));
  return stops;
}

Expected<ChainRoute> ChainRouter::route_via(
    const alvc::cluster::VirtualCluster& /*cluster: the leg source closes over the slice*/,
    TorId ingress, TorId egress, std::span<const HostRef> hosts,
    const RouteLegSource& legs) const {
  const auto stops = chain_stops(ingress, egress, hosts);
  ChainRoute route;
  route.conversions = count_conversions(hosts);
  for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
    auto leg = legs(stops[i], stops[i + 1], i);
    if (!leg) return leg.error();
    route.legs.push_back(std::move(*leg));
  }
  finish_route(*topo_, route);
  return route;
}

Expected<ChainRoute> ChainRouter::route(const alvc::cluster::VirtualCluster& cluster,
                                        TorId ingress, TorId egress,
                                        std::span<const HostRef> hosts) const {
  const auto stops = chain_stops(ingress, egress, hosts);
  alvc::graph::VertexSet allowed;
  slice_vertices(*topo_, cluster, stops, allowed);
  return route_via(cluster, ingress, egress, hosts,
                   [&](std::size_t from, std::size_t to, std::size_t leg_index) {
                     return route_leg(*topo_, allowed, from, to, leg_index);
                   });
}

Expected<ChainRoute> ChainRouter::route_balanced(const alvc::cluster::VirtualCluster& cluster,
                                                 TorId ingress, TorId egress,
                                                 std::span<const HostRef> hosts,
                                                 const BandwidthLedger& ledger,
                                                 std::size_t k) const {
  std::vector<std::size_t> stops;
  stops.push_back(topo_->tor_vertex(ingress));
  for (const HostRef& host : hosts) stops.push_back(attach_vertex(host));
  stops.push_back(topo_->tor_vertex(egress));
  alvc::graph::VertexSet allowed;
  slice_vertices(*topo_, cluster, stops, allowed);
  const auto filter = [&](std::size_t v) { return allowed.contains(v); };

  ChainRoute route;
  route.conversions = count_conversions(hosts);
  for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
    if (stops[i] == stops[i + 1]) {
      route.legs.push_back({stops[i]});
      continue;
    }
    const auto candidates =
        alvc::graph::k_shortest_paths(topo_->switch_graph(), stops[i], stops[i + 1], k, filter);
    if (candidates.empty()) {
      return Error{ErrorCode::kInfeasible,
                   "no slice-internal path for leg " + std::to_string(i)};
    }
    // Bottleneck headroom of each candidate; first max wins (candidates are
    // length-ordered, so ties prefer the shorter path).
    std::size_t best = 0;
    double best_headroom = -1;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      double headroom = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j + 1 < candidates[c].size(); ++j) {
        headroom = std::min(headroom, ledger.free_gbps(candidates[c][j], candidates[c][j + 1]));
      }
      if (headroom > best_headroom + 1e-12) {
        best_headroom = headroom;
        best = c;
      }
    }
    route.legs.push_back(candidates[best]);
  }
  finish_route(*topo_, route);
  return route;
}

Expected<ChainRoute> ChainRouter::route_graph(const alvc::cluster::VirtualCluster& cluster,
                                              TorId ingress, TorId egress,
                                              const alvc::nfv::ForwardingGraph& graph,
                                              std::span<const HostRef> node_hosts) const {
  if (node_hosts.size() != graph.node_count()) {
    return Error{ErrorCode::kInvalidArgument, "node_hosts size != graph node count"};
  }
  if (auto status = graph.validate(); !status.is_ok()) return status.error();
  std::vector<std::size_t> extras;
  extras.reserve(node_hosts.size() + 2);
  for (const HostRef& host : node_hosts) extras.push_back(attach_vertex(host));
  extras.push_back(topo_->tor_vertex(ingress));
  extras.push_back(topo_->tor_vertex(egress));
  alvc::graph::VertexSet allowed;
  slice_vertices(*topo_, cluster, extras, allowed);
  return route_graph_via(cluster, ingress, egress, graph, node_hosts,
                         [&](std::size_t from, std::size_t to, std::size_t leg_index) {
                           return route_leg(*topo_, allowed, from, to, leg_index);
                         });
}

Expected<ChainRoute> ChainRouter::route_graph_via(const alvc::cluster::VirtualCluster& cluster,
                                                  TorId ingress, TorId egress,
                                                  const alvc::nfv::ForwardingGraph& graph,
                                                  std::span<const HostRef> node_hosts,
                                                  const RouteLegSource& legs) const {
  if (node_hosts.size() != graph.node_count()) {
    return Error{ErrorCode::kInvalidArgument, "node_hosts size != graph node count"};
  }
  if (auto status = graph.validate(); !status.is_ok()) return status.error();

  std::vector<std::size_t> attach(node_hosts.size());
  for (std::size_t i = 0; i < node_hosts.size(); ++i) attach[i] = attach_vertex(node_hosts[i]);
  const std::size_t ingress_v = topo_->tor_vertex(ingress);
  const std::size_t egress_v = topo_->tor_vertex(egress);

  ChainRoute route;
  std::size_t leg_index = 0;
  // Ingress -> entry node.
  {
    auto leg = legs(ingress_v, attach[graph.entry()], leg_index++);
    if (!leg) return leg.error();
    route.legs.push_back(std::move(*leg));
  }
  // One leg per DAG edge; conversions per optical->electronic edge.
  std::size_t conversions = 0;
  for (const auto& edge : graph.edges()) {
    auto leg = legs(attach[edge.from], attach[edge.to], leg_index++);
    if (!leg) return leg.error();
    route.legs.push_back(std::move(*leg));
    if (alvc::nfv::is_optical_host(node_hosts[edge.from]) &&
        !alvc::nfv::is_optical_host(node_hosts[edge.to])) {
      ++conversions;
    }
  }
  // Every exit -> egress.
  for (std::size_t exit : graph.exits()) {
    auto leg = legs(attach[exit], egress_v, leg_index++);
    if (!leg) return leg.error();
    route.legs.push_back(std::move(*leg));
  }
  // Entry counts once when the (electronic) ingress hands to an electronic
  // entry host and optical segments exist later — keep the simple per-edge
  // definition and add the entry excursion only if the entry host is
  // electronic (the flow dips out of the optical ingress segment).
  if (!alvc::nfv::is_optical_host(node_hosts[graph.entry()])) ++conversions;
  route.conversions.mid_chain = conversions;
  finish_route(*topo_, route);
  return route;
}

}  // namespace alvc::orchestrator
