// Admission control for chain provisioning.
//
// Before the orchestrator spends work on placement and routing, a chain is
// checked against its slice's resources: the requested bandwidth must fit
// every switch port it could use, and the chain's aggregate VNF demand must
// fit the slice's aggregate free capacity (a cheap necessary condition;
// placement does the exact per-host check).
#pragma once

#include "cluster/virtual_cluster.h"
#include "nfv/catalog.h"
#include "nfv/hosting.h"
#include "nfv/nfc.h"
#include "orchestrator/bandwidth_allocator.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::orchestrator {

using alvc::util::Status;

struct AdmissionStats {
  std::size_t admitted = 0;
  std::size_t admitted_downgraded = 0;  // admitted at a reduced ladder rung
  std::size_t rejected_bandwidth = 0;
  std::size_t rejected_capacity_flow = 0;  // max-flow check failed
  std::size_t rejected_resources = 0;
  std::size_t rejected_malformed = 0;
};

/// Which stats counter an admission decision lands in.
enum class AdmissionOutcome {
  kAdmitted,
  kAdmittedDowngraded,  // bandwidth infeasible in full; a lower rung fits
  kRejectedMalformed,
  kRejectedBandwidth,
  kRejectedCapacityFlow,
  kRejectedResources,
};

/// A check() decision: the status handed to the caller plus the counter it
/// belongs to (so recording can be deferred, e.g. by the batch path), and
/// the bandwidth actually granted (== the spec's demand unless the decision
/// is kAdmittedDowngraded, 0 on rejection).
struct AdmissionDecision {
  Status status;
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  double granted_gbps = 0;
};

class AdmissionController {
 public:
  AdmissionController(const alvc::topology::DataCenterTopology& topo,
                      const alvc::nfv::VnfCatalog& catalog)
      : topo_(&topo), catalog_(&catalog) {}

  /// Pure feasibility decision — no counter updates, safe to call from
  /// several threads at once (reads topology/pool only). Identical to
  /// check_with_policy under kStrictLadder.
  [[nodiscard]] AdmissionDecision check(const alvc::nfv::NfcSpec& spec,
                                        const alvc::cluster::VirtualCluster& cluster,
                                        const alvc::nfv::HostingPool& pool) const;

  /// Policy-aware variant: under kWaterFill / kPriorityDowngrade a chain
  /// whose full demand fails the bandwidth or min-cut check is admitted at
  /// the largest ladder rung the slice can carry (kAdmittedDowngraded)
  /// instead of hard-rejected — admission under pressure downgrades rather
  /// than refuses. Malformed and resource rejections are unaffected.
  [[nodiscard]] AdmissionDecision check_with_policy(const alvc::nfv::NfcSpec& spec,
                                                    const alvc::cluster::VirtualCluster& cluster,
                                                    const alvc::nfv::HostingPool& pool,
                                                    AllocationPolicy policy) const;

  /// Applies a decision to the stats counters.
  void record(const AdmissionDecision& decision) noexcept;

  /// kRejected with a reason when the chain cannot possibly be served by
  /// the cluster's slice; ok otherwise. Equivalent to check() + record().
  [[nodiscard]] Status admit(const alvc::nfv::NfcSpec& spec,
                             const alvc::cluster::VirtualCluster& cluster,
                             const alvc::nfv::HostingPool& pool);

  /// check_with_policy() + record(); the decision carries the granted
  /// bandwidth the caller must provision at.
  [[nodiscard]] AdmissionDecision admit_with_policy(const alvc::nfv::NfcSpec& spec,
                                                    const alvc::cluster::VirtualCluster& cluster,
                                                    const alvc::nfv::HostingPool& pool,
                                                    AllocationPolicy policy);

  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }

  /// Maximum bandwidth the slice can carry between two of its ToRs,
  /// computed as a max flow over the slice's switch subgraph with per-link
  /// capacity = min(port bandwidth of the endpoints). Used by admit() to
  /// reject chains whose demand exceeds any slice-internal cut, not just
  /// the single weakest port.
  [[nodiscard]] double slice_capacity_gbps(const alvc::cluster::VirtualCluster& cluster,
                                           alvc::util::TorId ingress,
                                           alvc::util::TorId egress) const;

 private:
  const alvc::topology::DataCenterTopology* topo_;
  const alvc::nfv::VnfCatalog* catalog_;
  AdmissionStats stats_;
};

}  // namespace alvc::orchestrator
