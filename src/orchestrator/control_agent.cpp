#include "orchestrator/control_agent.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>

#include "util/lock_rank.h"

namespace alvc::orchestrator {

ControlAgent::ControlAgent(const alvc::topology::DataCenterTopology& topo,
                           std::size_t shard_count, alvc::util::Executor* executor)
    : executor_(executor) {
  assert(shard_count >= 1 && "ControlAgent needs at least one shard");
  shards_.reserve(shard_count);
  for (std::size_t index = 0; index < shard_count; ++index) {
    shards_.emplace_back(topo, index);
  }
}

void ControlAgent::register_chain(NfcId id, ClusterId primary,
                                  std::span<const ClusterId> secondary) {
  shards_[shard_of(primary)].add_chain(id, primary);
  for (ClusterId cluster : secondary) shards_[shard_of(cluster)].add_chain(id, cluster);
}

void ControlAgent::unregister_chain(NfcId id, ClusterId primary,
                                    std::span<const ClusterId> secondary) {
  shards_[shard_of(primary)].remove_chain(id, primary);
  for (ClusterId cluster : secondary) shards_[shard_of(cluster)].remove_chain(id, cluster);
}

namespace {

/// Classifies `ids` and appends the findings to the shard-local partial
/// result. Shared by the full and scoped scans so both count visits and
/// findings the same way.
void classify_ids(std::span<const NfcId> ids, const ControlAgent::Classifier& classify,
                  std::vector<ScanItem>& local, ShardCounters& counters) {
  for (NfcId id : ids) {
    ++counters.chains_visited;
    ScanItem item;
    item.id = id;
    if (classify(id, item)) local.push_back(std::move(item));
  }
}

/// Merge tail shared by scan and scan_scoped: ascending id, duplicates (a
/// chain registered with several shards, classified once per shard by a
/// pure classifier) collapsed to the first copy.
void sort_and_dedupe(std::vector<ScanItem>& merged) {
  std::sort(merged.begin(), merged.end(),
            [](const ScanItem& a, const ScanItem& b) { return a.id < b.id; });
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const ScanItem& a, const ScanItem& b) { return a.id == b.id; }),
               merged.end());
}

}  // namespace

std::vector<ScanItem> ControlAgent::scan(const Classifier& classify) {
  std::vector<ScanItem> merged;
  alvc::util::fan_out_shards(executor_, shards_.size(), [&](std::size_t index) {
    ControlShard& shard = shards_[index];
    std::vector<ScanItem> local;
    classify_ids(shard.chain_ids_, classify, local, shard.counters_);
    shard.counters_.findings += local.size();
    ++shard.counters_.scans;
    if (local.empty()) return;
    ALVC_LOCK_RANK(alvc::util::lock_rank::kOrchestratorAgentMerge,
                   "orchestrator.agent_merge");
    const std::lock_guard<std::mutex> lock(merge_mu_);
    merged.insert(merged.end(), std::make_move_iterator(local.begin()),
                  std::make_move_iterator(local.end()));
  });
  sort_and_dedupe(merged);
  return merged;
}

std::vector<ScanItem> ControlAgent::scan_scoped(std::span<const ClusterId> scope,
                                                const Classifier& classify) {
  // Bucket the scoped clusters by owning shard. Bucket order does not
  // matter: each worker sorts its candidate ids before classifying.
  std::vector<std::vector<ClusterId>> buckets(shards_.size());
  for (ClusterId cluster : scope) {
    std::vector<ClusterId>& bucket = buckets[shard_of(cluster)];
    if (std::find(bucket.begin(), bucket.end(), cluster) == bucket.end()) {
      bucket.push_back(cluster);
    }
  }
  std::vector<ScanItem> merged;
  alvc::util::fan_out_shards(executor_, shards_.size(), [&](std::size_t index) {
    ControlShard& shard = shards_[index];
    ++shard.counters_.scans;
    if (buckets[index].empty()) return;  // no scoped cluster lives here
    std::vector<NfcId> ids;
    for (ClusterId cluster : buckets[index]) {
      if (const std::vector<NfcId>* members = shard.cluster_chains(cluster)) {
        ids.insert(ids.end(), members->begin(), members->end());
      }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::vector<ScanItem> local;
    classify_ids(ids, classify, local, shard.counters_);
    shard.counters_.findings += local.size();
    if (local.empty()) return;
    ALVC_LOCK_RANK(alvc::util::lock_rank::kOrchestratorAgentMerge,
                   "orchestrator.agent_merge");
    const std::lock_guard<std::mutex> lock(merge_mu_);
    merged.insert(merged.end(), std::make_move_iterator(local.begin()),
                  std::make_move_iterator(local.end()));
  });
  sort_and_dedupe(merged);
  return merged;
}

bool ControlAgent::enqueue_retry(RetryEntry entry, ClusterId cluster) {
  return shards_[shard_of(cluster)].enqueue_retry(entry);
}

std::vector<RetryEntry> ControlAgent::drain_retries() {
  std::vector<RetryEntry> drained;
  for (ControlShard& shard : shards_) {
    drained.insert(drained.end(), shard.retries_.begin(), shard.retries_.end());
    shard.retries_.clear();
  }
  std::sort(drained.begin(), drained.end(),
            [](const RetryEntry& a, const RetryEntry& b) { return a.id < b.id; });
  return drained;
}

std::size_t ControlAgent::retry_count() const noexcept {
  std::size_t total = 0;
  for (const ControlShard& shard : shards_) total += shard.retries_.size();
  return total;
}

std::size_t ControlAgent::membership_count() const noexcept {
  std::size_t total = 0;
  for (const ControlShard& shard : shards_) total += shard.chain_ids_.size();
  return total;
}

}  // namespace alvc::orchestrator
