// QoS-aware bandwidth allocation with water-filling fairness and graceful
// downgrade (ROADMAP item 3; heyp-agents' per-aggregate allocator family is
// the model).
//
// The PR-2 fault engine degrades chains on a blunt 1/2/4/8 ladder with no
// notion of priority or fairness: each chain independently probes the
// largest rung its route can reserve, first-come order decides who wins
// contended capacity, and nothing ever shrinks a healthy chain to make room.
// BandwidthAllocator replaces that with a real allocation policy, pluggable
// via AllocationPolicy:
//
//   kStrictLadder      — the legacy behavior, preserved bit-for-bit. The
//                        orchestrator's fit path is untouched and no
//                        rebalance ever runs; the 20-seed chaos
//                        differentials pin this down.
//   kWaterFill         — classless max-min fairness. Continuous shares come
//                        from progressive filling over every contended
//                        resource, are quantized down to the ladder's rungs
//                        (the data plane still programs rungs, not
//                        arbitrary rates), and a deterministic climb pass
//                        reclaims the quantization slack so no chain sits
//                        below a rung its route could carry.
//   kPriorityDowngrade — two-tier water-filling: HIPRI aggregates fill
//                        first, LOPRI shares come from the residual, and a
//                        shedding pass demotes LOPRI rung-by-rung whenever
//                        that lets a bandwidth-short HIPRI climb. The
//                        guarantee (audited by StateAuditor) is priority-
//                        feasibility: a HIPRI chain is short only if it
//                        could not climb even with every LOPRI aggregate
//                        shed to zero.
//
// Resource model. Slices are OPS-disjoint and routes are slice-internal, so
// distinct chains never share a ToR-OPS *link* — per-link contention alone
// would make fairness vacuous. Chains of different slices do share *ToRs*
// (two services with VMs in one rack ride the same ToR through different
// uplinks), so the allocator models, besides every route link, an aggregate
// uplink budget per ToR: tor_budget_factor × the ToR's port bandwidth,
// shared by every chain whose route crosses that ToR (counted once per
// incident route link — a through-ToR hop consumes ingress and egress).
// The budget is enforced by the allocator's rebalance, never by the
// ledger's reserve path, which keeps kStrictLadder byte-identical.
//
// plan() is a pure function of its inputs (no topology, no clocks), which
// is what the water-filling property tests exercise directly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "nfv/nfc.h"
#include "util/ids.h"

namespace alvc::orchestrator {

enum class AllocationPolicy : std::uint8_t {
  kStrictLadder = 0,
  kWaterFill = 1,
  kPriorityDowngrade = 2,
};

[[nodiscard]] constexpr const char* to_string(AllocationPolicy policy) noexcept {
  switch (policy) {
    case AllocationPolicy::kStrictLadder: return "strict-ladder";
    case AllocationPolicy::kWaterFill: return "water-fill";
    case AllocationPolicy::kPriorityDowngrade: return "priority-downgrade";
  }
  return "?";
}

/// Result of single-resource water-filling (the textbook max-min special
/// case; plan() uses the multi-resource generalization internally).
struct WaterFillResult {
  std::vector<double> grants;   // one per demand, grants[i] <= demands[i]
  double level = 0;             // final common fill level
  std::size_t iterations = 0;   // progressive-filling rounds
};

/// Max-min fair split of `capacity_gbps` among `demands`: the common water
/// level rises until a demand is satisfied (it freezes at its demand) or
/// the capacity is exhausted (everyone unfrozen shares the level equally).
/// Deterministic, allocation order independent of demand order.
[[nodiscard]] WaterFillResult water_fill(std::span<const double> demands, double capacity_gbps);

/// One chain as the allocator sees it: a demand drawing on a set of
/// resources, `coeff` units of resource per Gbps granted (1.0 for a route
/// link; the per-ToR incidence count for an aggregate ToR budget).
struct AllocChain {
  alvc::util::NfcId id;
  alvc::nfv::PriorityClass cls = alvc::nfv::PriorityClass::kHipri;
  double demand_gbps = 0;
  std::vector<std::pair<std::uint32_t, double>> uses;  // (resource index, coeff)
};

struct AllocResource {
  double capacity_gbps = 0;
};

struct AllocationPlan {
  /// Target reservation per chain, parallel to the input span. Always a
  /// ladder rung of the chain's demand (possibly 0 = shed, or the demand
  /// itself = full service).
  std::vector<double> target_gbps;
  std::size_t fill_iterations = 0;   // progressive-filling rounds, all tiers
  std::size_t lopri_demotions = 0;   // LOPRI rungs shed for blocked HIPRIs
};

class BandwidthAllocator {
 public:
  /// The degraded-mode ladder both the legacy fit path and plan() quantize
  /// to: fractions of a chain's demand the data plane programs.
  static constexpr std::array<double, 4> kLadder{1.0, 0.5, 0.25, 0.125};

  void set_policy(AllocationPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] AllocationPolicy policy() const noexcept { return policy_; }

  /// Aggregate uplink budget per ToR as a multiple of its port bandwidth;
  /// <= 0 disables the aggregate resource (links only).
  void set_tor_budget_factor(double factor) noexcept { tor_budget_factor_ = factor; }
  [[nodiscard]] double tor_budget_factor() const noexcept { return tor_budget_factor_; }

  /// Largest ladder rung of `demand` not exceeding `share` (0 when even
  /// the 1/8 rung does not fit).
  [[nodiscard]] static double quantize_down(double demand_gbps, double share_gbps) noexcept;
  /// The next rung above `current` as an absolute grant, or 0 when the
  /// chain already holds its full demand.
  [[nodiscard]] static double next_rung_gbps(double demand_gbps, double current_gbps) noexcept;

  /// Computes the policy's target reservation for every chain against raw
  /// resource capacities (current reservations are re-derived, not input:
  /// the plan is the full allocation, shrink and grow fall out of the
  /// diff). Pure and deterministic; kStrictLadder returns every chain's
  /// demand unchanged (the legacy fit path owns strict behavior).
  [[nodiscard]] AllocationPlan plan(std::span<const AllocChain> chains,
                                    std::span<const AllocResource> resources) const;

 private:
  AllocationPolicy policy_ = AllocationPolicy::kStrictLadder;
  double tor_budget_factor_ = 2.0;
};

}  // namespace alvc::orchestrator
