#include "orchestrator/bandwidth.h"

#include <algorithm>

namespace alvc::orchestrator {

using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Status;

BandwidthLedger::LinkKey BandwidthLedger::key(std::size_t u, std::size_t v) noexcept {
  const auto [lo, hi] = std::minmax(u, v);
  return (static_cast<LinkKey>(lo) << 32) | static_cast<LinkKey>(hi & 0xffffffffULL);
}

double BandwidthLedger::vertex_port(std::size_t v) const {
  if (topo_->is_ops_vertex(v)) return topo_->ops(topo_->vertex_to_ops(v)).port_bandwidth_gbps;
  return topo_->tor(topo_->vertex_to_tor(v)).port_bandwidth_gbps;
}

double BandwidthLedger::capacity_gbps(std::size_t u, std::size_t v) const {
  return std::min(vertex_port(u), vertex_port(v));
}

double BandwidthLedger::capacity_of_key(LinkKey k) const {
  const auto u = static_cast<std::size_t>(k >> 32);
  const auto v = static_cast<std::size_t>(k & 0xffffffffULL);
  return capacity_gbps(u, v);
}

double BandwidthLedger::reserved_gbps(std::size_t u, std::size_t v) const {
  const auto it = reserved_.find(key(u, v));
  return it == reserved_.end() ? 0.0 : it->second;
}

double BandwidthLedger::free_gbps(std::size_t u, std::size_t v) const {
  return capacity_gbps(u, v) - reserved_gbps(u, v);
}

std::vector<BandwidthLedger::LinkKey> BandwidthLedger::distinct_links(
    std::span<const std::size_t> walk) {
  std::vector<LinkKey> links;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    if (walk[i] == walk[i + 1]) continue;
    links.push_back(key(walk[i], walk[i + 1]));
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

Status BandwidthLedger::reserve_walk(std::span<const std::size_t> walk, double gbps) {
  if (gbps < 0) return Error{ErrorCode::kInvalidArgument, "negative bandwidth"};
  const auto links = distinct_links(walk);
  for (LinkKey k : links) {
    const auto it = reserved_.find(k);
    const double used = it == reserved_.end() ? 0.0 : it->second;
    if (used + gbps > capacity_of_key(k) + 1e-9) {
      return Error{ErrorCode::kCapacityExceeded,
                   "link lacks bandwidth headroom for " + std::to_string(gbps) + " Gbps"};
    }
  }
  for (LinkKey k : links) reserved_[k] += gbps;
  return Status::ok();
}

void BandwidthLedger::release_walk(std::span<const std::size_t> walk, double gbps) {
  for (LinkKey k : distinct_links(walk)) {
    const auto it = reserved_.find(k);
    if (it == reserved_.end()) continue;
    it->second = std::max(0.0, it->second - gbps);
    if (it->second <= 1e-12) reserved_.erase(it);
  }
}

std::vector<BandwidthLedger::ReservedLink> BandwidthLedger::reserved_links() const {
  std::vector<ReservedLink> out;
  out.reserve(reserved_.size());
  for (const auto& [k, gbps] : reserved_) {
    out.push_back(ReservedLink{.u = static_cast<std::size_t>(k >> 32),
                               .v = static_cast<std::size_t>(k & 0xffffffffULL),
                               .gbps = gbps});
  }
  // reserved_ iterates in hash order; exports must not.
  std::sort(out.begin(), out.end(), [](const ReservedLink& a, const ReservedLink& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

double BandwidthLedger::peak_load() const {
  double peak = 0;
  for (const auto& [k, used] : reserved_) {
    const double capacity = capacity_of_key(k);
    if (capacity > 0) peak = std::max(peak, used / capacity);
  }
  return peak;
}

}  // namespace alvc::orchestrator
