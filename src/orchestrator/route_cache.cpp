#include "orchestrator/route_cache.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "graph/graph.h"
#include "telemetry/telemetry.h"

namespace alvc::orchestrator {

using alvc::cluster::VirtualCluster;
using alvc::graph::fingerprint_mix;
using alvc::nfv::HostRef;
using alvc::util::OpsId;

BandwidthTier bandwidth_tier(double fraction) noexcept {
  if (fraction >= 1.0) return BandwidthTier::kFull;
  if (fraction >= 0.5) return BandwidthTier::kHalf;
  if (fraction >= 0.25) return BandwidthTier::kQuarter;
  return BandwidthTier::kEighth;
}

std::size_t RouteCache::LegKeyHash::operator()(const LegKey& k) const noexcept {
  std::uint64_t fp = alvc::graph::kFingerprintSeed;
  fp = fingerprint_mix(fp, k.cluster);
  fp = fingerprint_mix(fp, k.tier);
  fp = fingerprint_mix(fp, k.cls);
  fp = fingerprint_mix(fp, k.from);
  fp = fingerprint_mix(fp, k.to);
  return static_cast<std::size_t>(fp);
}

std::uint64_t RouteCache::slice_fingerprint(const VirtualCluster& cluster) const {
  // Everything the filtered BFS can observe: which vertices the slice
  // admits, which of them are alive, and which slice-internal edges exist
  // and are intact. Non-slice elements cannot influence a slice-filtered
  // search, so they stay out of the fingerprint — that is what makes
  // revalidation cheap under unrelated churn.
  std::uint64_t fp = alvc::graph::kFingerprintSeed;
  const auto& layer = cluster.layer;
  fp = fingerprint_mix(fp, layer.tors.size());
  for (TorId t : layer.tors) {
    fp = fingerprint_mix(fp, t.value());
    fp = fingerprint_mix(fp, topo_->tor_usable(t) ? 1 : 0);
    for (OpsId o : topo_->tor(t).uplinks) {
      if (!layer.contains_ops(o)) continue;
      fp = fingerprint_mix(fp, o.value());
      fp = fingerprint_mix(fp, topo_->link_failed(t, o) ? 1 : 0);
    }
  }
  fp = fingerprint_mix(fp, layer.opss.size());
  for (OpsId o : layer.opss) {
    fp = fingerprint_mix(fp, o.value());
    fp = fingerprint_mix(fp, topo_->ops_usable(o) ? 1 : 0);
    // Core links have no per-link failure flag, but new ones can be strung
    // at runtime; the adjacency itself is part of the subgraph.
    for (OpsId peer : topo_->ops(o).peer_links) {
      if (layer.contains_ops(peer)) fp = fingerprint_mix(fp, peer.value());
    }
  }
  return fp;
}

std::uint64_t RouteCache::slice_state(const VirtualCluster& cluster, std::uint64_t epoch) {
  SliceState& st = slice_states_[cluster.id];
  if (!st.valid || st.epoch != epoch) {
    st.fingerprint = slice_fingerprint(cluster);
    st.epoch = epoch;
    st.valid = true;
  }
  return st.fingerprint;
}

bool RouteCache::walk_live(const VirtualCluster& cluster, std::span<const std::size_t> path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    const std::size_t v = path[i];
    if (topo_->is_ops_vertex(v)) {
      const auto ops = topo_->vertex_to_ops(v);
      if (!topo_->ops_usable(ops) || !cluster.layer.contains_ops(ops)) return false;
    } else {
      const auto tor = topo_->vertex_to_tor(v);
      if (!topo_->tor_usable(tor) || !cluster.layer.contains_tor(tor)) return false;
    }
    if (i == 0) continue;
    const std::size_t prev = path[i - 1];
    if (topo_->is_ops_vertex(prev) != topo_->is_ops_vertex(v)) {
      const std::size_t tor_v = topo_->is_ops_vertex(prev) ? v : prev;
      const std::size_t ops_v = topo_->is_ops_vertex(prev) ? prev : v;
      if (topo_->link_failed(topo_->vertex_to_tor(tor_v), topo_->vertex_to_ops(ops_v))) {
        return false;
      }
    }
  }
  return true;
}

bool RouteCache::stops_in_slice(const VirtualCluster& cluster,
                                std::span<const std::size_t> stops) const {
  for (std::size_t v : stops) {
    if (topo_->is_ops_vertex(v)) {
      if (!cluster.layer.contains_ops(topo_->vertex_to_ops(v))) return false;
    } else {
      if (!cluster.layer.contains_tor(topo_->vertex_to_tor(v))) return false;
    }
  }
  return true;
}

Expected<std::vector<std::size_t>> RouteCache::cached_leg(
    const VirtualCluster& cluster, BandwidthTier tier, alvc::nfv::PriorityClass cls,
    alvc::graph::VertexSet& allowed, std::size_t from, std::size_t to, std::size_t leg_index) {
  // Trivial legs are cheaper to produce than to look up.
  if (from == to) return std::vector<std::size_t>{from};
  const std::uint64_t epoch = topo_->mutation_epoch();
  const std::uint64_t fp = slice_state(cluster, epoch);
  const LegKey key{cluster.id.value(), static_cast<std::uint8_t>(tier),
                   static_cast<std::uint8_t>(cls), from, to};
  Entry& entry = legs_[key];
  for (std::size_t i = 0; i < entry.variants.size(); ++i) {
    Variant& v = entry.variants[i];
    if (v.slice_fp != fp) continue;  // another slice state; keep for when it returns
    if (v.validated_epoch == epoch) {
      ++stats_.hits;
      ALVC_COUNT("orchestrator.route_cache.hit");
    } else if (walk_live(cluster, v.path) &&
               alvc::graph::path_fingerprint(v.path) == v.path_fp) {
      v.validated_epoch = epoch;
      ++stats_.revalidations;
      ALVC_COUNT("orchestrator.route_cache.revalidate");
    } else {
      // The fingerprint says the subgraph is back, yet the stored path no
      // longer walks clean: a fingerprint collision (or corruption). Drop
      // the variant and recompute — correctness never rides the hash.
      ++stats_.stale_evictions;
      ALVC_COUNT("orchestrator.route_cache.stale");
      entry.variants.erase(entry.variants.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    if (i != 0) std::rotate(entry.variants.begin(), entry.variants.begin() + i,
                            entry.variants.begin() + i + 1);  // promote to MRU
    return entry.variants.front().path;
  }
  ++stats_.misses;
  ALVC_COUNT("orchestrator.route_cache.miss");
  if (allowed.size() == 0) {
    // Built once per route() call, and only when some leg actually misses:
    // a fully cached route never pays the O(slice) set construction.
    routing_detail::slice_vertices(*topo_, cluster, {}, allowed);
  }
  auto leg = routing_detail::route_leg(*topo_, allowed, from, to, leg_index);
  // Infeasible legs are not cached: negative results would have to be
  // invalidated on every recovery, and callers treat them as terminal.
  if (!leg) return leg;
  entry.variants.insert(entry.variants.begin(),
                        Variant{.slice_fp = fp,
                                .validated_epoch = epoch,
                                .path_fp = alvc::graph::path_fingerprint(*leg),
                                .path = *leg});
  if (entry.variants.size() > kMaxVariants) {
    entry.variants.pop_back();
    ++stats_.stale_evictions;
    ALVC_COUNT("orchestrator.route_cache.stale");
  }
  ALVC_GAUGE_SET("orchestrator.route_cache.entries", static_cast<double>(legs_.size()));
  return leg;
}

Expected<ChainRoute> RouteCache::route(const ChainRouter& router, const VirtualCluster& cluster,
                                       TorId ingress, TorId egress,
                                       std::span<const HostRef> hosts, BandwidthTier tier,
                                       alvc::nfv::PriorityClass cls) {
  ALVC_SPAN(span, "orchestrator.route_cache.route");
  const auto stops = router.chain_stops(ingress, egress, hosts);
  if (!stops_in_slice(cluster, stops)) {
    // A stop outside the AL widens the allowed set beyond the slice; the
    // fingerprint would not cover it. Rare (anchors are AL ToRs) — punt.
    ++stats_.bypasses;
    ALVC_COUNT("orchestrator.route_cache.bypass");
    return router.route(cluster, ingress, egress, hosts);
  }
  alvc::graph::VertexSet allowed;  // lazily filled by the first miss
  return router.route_via(cluster, ingress, egress, hosts,
                          [&](std::size_t from, std::size_t to, std::size_t leg_index) {
                            return cached_leg(cluster, tier, cls, allowed, from, to, leg_index);
                          });
}

Expected<ChainRoute> RouteCache::route_graph(const ChainRouter& router,
                                             const VirtualCluster& cluster, TorId ingress,
                                             TorId egress,
                                             const alvc::nfv::ForwardingGraph& graph,
                                             std::span<const HostRef> node_hosts,
                                             BandwidthTier tier, alvc::nfv::PriorityClass cls) {
  ALVC_SPAN(span, "orchestrator.route_cache.route_graph");
  std::vector<std::size_t> stops;
  stops.reserve(node_hosts.size() + 2);
  for (const HostRef& host : node_hosts) stops.push_back(router.attach_vertex(host));
  stops.push_back(topo_->tor_vertex(ingress));
  stops.push_back(topo_->tor_vertex(egress));
  if (!stops_in_slice(cluster, stops)) {
    ++stats_.bypasses;
    ALVC_COUNT("orchestrator.route_cache.bypass");
    return router.route_graph(cluster, ingress, egress, graph, node_hosts);
  }
  alvc::graph::VertexSet allowed;
  return router.route_graph_via(cluster, ingress, egress, graph, node_hosts,
                                [&](std::size_t from, std::size_t to, std::size_t leg_index) {
                                  return cached_leg(cluster, tier, cls, allowed, from, to,
                                                    leg_index);
                                });
}

void RouteCache::invalidate_slice(ClusterId cluster) {
  std::uint64_t dropped = 0;
  for (auto it = legs_.begin(); it != legs_.end();) {
    if (it->first.cluster == cluster.value()) {
      dropped += it->second.variants.size();
      it = legs_.erase(it);
    } else {
      ++it;
    }
  }
  slice_states_.erase(cluster);
  stats_.invalidations += dropped;
  if (dropped > 0) ALVC_COUNT_N("orchestrator.route_cache.invalidate", dropped);
  ALVC_GAUGE_SET("orchestrator.route_cache.entries", static_cast<double>(legs_.size()));
}

void RouteCache::clear() {
  stats_.invalidations += variant_count();
  legs_.clear();
  slice_states_.clear();
  ALVC_GAUGE_SET("orchestrator.route_cache.entries", 0.0);
}

std::size_t RouteCache::variant_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, entry] : legs_) n += entry.variants.size();
  return n;
}

std::vector<std::string> RouteCache::check_coherence(
    std::span<const VirtualCluster* const> clusters) const {
  std::vector<std::string> violations;
  // Audit in key order, not hash order: coherence reports are compared
  // across runs by the differential suites.
  std::vector<std::pair<const LegKey*, const Entry*>> legs;
  legs.reserve(legs_.size());
  for (const auto& [key, entry] : legs_) legs.emplace_back(&key, &entry);
  std::sort(legs.begin(), legs.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first->cluster, a.first->tier, a.first->cls, a.first->from, a.first->to) <
           std::tie(b.first->cluster, b.first->tier, b.first->cls, b.first->from, b.first->to);
  });
  for (const VirtualCluster* vc : clusters) {
    if (vc == nullptr) continue;
    const std::uint64_t fp = slice_fingerprint(*vc);
    for (const auto& [key_ptr, entry_ptr] : legs) {
      const LegKey& key = *key_ptr;
      const Entry& entry = *entry_ptr;
      if (key.cluster != vc->id.value()) continue;
      for (const Variant& v : entry.variants) {
        if (v.slice_fp != fp) continue;  // not servable right now; exempt
        const std::string tag = "route-cache leg " + std::to_string(key.from) + "->" +
                                std::to_string(key.to) + " of cluster " +
                                std::to_string(key.cluster);
        if (alvc::graph::path_fingerprint(v.path) != v.path_fp) {
          violations.push_back(tag + ": stored path fails its own fingerprint");
          continue;
        }
        if (v.path.empty() || v.path.front() != key.from || v.path.back() != key.to) {
          violations.push_back(tag + ": stored path endpoints disagree with the key");
          continue;
        }
        if (!walk_live(*vc, v.path)) {
          violations.push_back(tag + ": servable variant rides dead or out-of-slice hops");
        }
      }
    }
  }
  return violations;
}

}  // namespace alvc::orchestrator
