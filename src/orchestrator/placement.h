// VNF placement strategies (paper §IV-D, Fig. 8).
//
// Given a chain and its slice (the cluster's AL plus the racks behind its
// ToRs), choose a host for every VNF. The paper's proposal: move VNFs into
// the optical domain (optoelectronic routers of the AL) whenever their
// resource demand fits, because each electronic-hosted VNF costs one O/E/O
// conversion per flow traversal.
//
// Strategies:
//   * ElectronicOnlyPlacement — the pre-NFV status quo; every VNF on a
//     server. Baseline for the FIG8 savings claim.
//   * RandomPlacement — uniformly random feasible host; ablation.
//   * GreedyOpticalPlacement — chain order, optical-first best fit; the
//     paper's rule of thumb.
//   * OeoMinimizingPlacement — exhaustive search over optical/electronic
//     domain patterns (chains are short) with best-fit host selection,
//     minimising mid-chain conversions; ground truth for the gap between
//     greedy and optimal.
//
// A successful place() COMMITS reservations to the pool; failures roll
// back.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "nfv/catalog.h"
#include "nfv/hosting.h"
#include "nfv/nfc.h"
#include "orchestrator/oeo.h"
#include "util/error.h"
#include "util/rng.h"

namespace alvc::orchestrator {

using alvc::nfv::HostRef;
using alvc::util::Expected;

struct PlacementContext {
  const alvc::topology::DataCenterTopology* topo = nullptr;
  const alvc::cluster::VirtualCluster* cluster = nullptr;
  const alvc::nfv::VnfCatalog* catalog = nullptr;
  alvc::nfv::HostingPool* pool = nullptr;

  /// Optoelectronic routers inside the slice's AL.
  [[nodiscard]] std::vector<alvc::util::OpsId> slice_optical_hosts() const;
  /// Servers behind the slice's ToRs.
  [[nodiscard]] std::vector<alvc::util::ServerId> slice_electronic_hosts() const;
};

struct PlacementResult {
  std::vector<HostRef> hosts;  // one per chain function, in order
  OeoCount conversions;
  std::size_t optical_count = 0;
  std::size_t electronic_count = 0;
};

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual Expected<PlacementResult> place(const alvc::nfv::NfcSpec& spec,
                                                        PlacementContext& context) const = 0;
};

class ElectronicOnlyPlacement final : public PlacementStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "electronic-only"; }
  [[nodiscard]] Expected<PlacementResult> place(const alvc::nfv::NfcSpec& spec,
                                                PlacementContext& context) const override;
};

class RandomPlacement final : public PlacementStrategy {
 public:
  explicit RandomPlacement(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }
  [[nodiscard]] Expected<PlacementResult> place(const alvc::nfv::NfcSpec& spec,
                                                PlacementContext& context) const override;

 private:
  std::uint64_t seed_;
};

class GreedyOpticalPlacement final : public PlacementStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "greedy-optical"; }
  [[nodiscard]] Expected<PlacementResult> place(const alvc::nfv::NfcSpec& spec,
                                                PlacementContext& context) const override;
};

class OeoMinimizingPlacement final : public PlacementStrategy {
 public:
  /// Chains longer than `exhaustive_limit` fall back to greedy-optical.
  explicit OeoMinimizingPlacement(std::size_t exhaustive_limit = 16)
      : exhaustive_limit_(exhaustive_limit) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "oeo-min"; }
  [[nodiscard]] Expected<PlacementResult> place(const alvc::nfv::NfcSpec& spec,
                                                PlacementContext& context) const override;

 private:
  std::size_t exhaustive_limit_;
};

/// Fills the result's derived fields from its host list.
void finalize_placement(PlacementResult& result);

}  // namespace alvc::orchestrator
