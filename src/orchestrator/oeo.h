// O/E/O conversion accounting (paper §IV-D, Fig. 8).
//
// Traffic in the core is optical; every visit to an electronic-domain VNF
// forces the flow out of the optical domain and back — one O/E/O conversion
// whose energy cost is proportional to the flow's length (bytes). Moving a
// VNF onto an optoelectronic router removes that excursion.
//
// Conventions (documented in DESIGN.md):
//   * conversions are counted per maximal run of consecutive electronic-
//     hosted VNFs on the same server; consecutive electronic VNFs on
//     DIFFERENT servers re-enter the optical core between them and count
//     separately (inter-rack traffic traverses the core);
//   * the fixed ingress (E->O) and egress (O->E) conversions at the chain
//     endpoints exist for every placement and are reported separately.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nfv/lifecycle.h"

namespace alvc::orchestrator {

/// Energy model parameters. Defaults give readable joule figures; only
/// ratios matter for the paper's comparisons.
struct OeoCostModel {
  /// Energy of one O/E/O conversion per byte converted.
  double conversion_joules_per_byte = 1.0e-9;
  /// Transport energy per byte-hop in each domain (optical is cheaper —
  /// the reason the paper builds the core from OPSs).
  double optical_joules_per_byte_hop = 0.05e-9;
  double electronic_joules_per_byte_hop = 0.2e-9;
};

/// Conversion breakdown of one chain placement.
struct OeoCount {
  /// Mid-chain O/E/O conversions caused by electronic-hosted VNFs.
  std::size_t mid_chain = 0;
  /// Fixed endpoint conversions (ingress E->O + egress O->E), always 2
  /// for a chain anchored at ToRs.
  std::size_t endpoint = 2;

  [[nodiscard]] std::size_t total() const noexcept { return mid_chain + endpoint; }
};

/// Counts mid-chain conversions from the host sequence alone.
[[nodiscard]] OeoCount count_conversions(std::span<const alvc::nfv::HostRef> hosts);

/// Energy spent on conversions for a flow of `bytes` under `model`.
[[nodiscard]] double conversion_energy(const OeoCount& count, double bytes,
                                       const OeoCostModel& model);

}  // namespace alvc::orchestrator
