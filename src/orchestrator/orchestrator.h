// The network orchestrator (paper §IV-B, Figs. 6-7).
//
// "On top of this architecture, we proposed a network orchestrator for
// multiple-tenant SDN-enabled networks. It is responsible for managing
// (provisioning, creation, modification, upgradation, and deletion) of
// multiple NFCs. It will logically divide the optical network into virtual
// slices and allocate each slice to a single NFC."
//
// NetworkOrchestrator composes every substrate:
//   ClusterManager  — VCs + ALs, OPS exclusivity            (§III)
//   SliceManager    — AL <-> NFC bijection                  (§IV-C)
//   AdmissionController — can this slice serve this chain?
//   PlacementStrategy   — hosts for each VNF                (§IV-D)
//   CloudNfvManager — lifecycle + capacity                  (§IV-B)
//   ChainRouter     — slice-internal forwarding path
//   SdnController   — flow-rule installation                (§IV-B)
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_manager.h"
#include "nfv/catalog.h"
#include "nfv/nfc.h"
#include "orchestrator/admission.h"
#include "orchestrator/control_agent.h"
#include "orchestrator/bandwidth.h"
#include "orchestrator/bandwidth_allocator.h"
#include "orchestrator/oeo.h"
#include "orchestrator/placement.h"
#include "orchestrator/route_cache.h"
#include "orchestrator/routing.h"
#include "orchestrator/slice.h"
#include "sdn/cloud_manager.h"
#include "sdn/controller.h"
#include "sdn/events.h"

namespace alvc::orchestrator {

using alvc::util::NfcId;

/// Everything the orchestrator knows about a live chain.
struct ProvisionedChain {
  alvc::nfv::NfcRecord record;
  alvc::util::ClusterId cluster;
  SliceId slice;
  std::vector<alvc::nfv::VnfInstanceId> instances;
  PlacementResult placement;
  ChainRoute route;
  std::size_t flow_rules = 0;  // rules the SDN controller installed
  /// Set for complex chains (paper's "network forwarding graph"); the
  /// record's linear spec then lists functions in topological order and
  /// placement.hosts[i] hosts graph node forwarding_order[i].
  std::optional<alvc::nfv::ForwardingGraph> graph;
  std::vector<std::size_t> forwarding_order;  // topo order used for placement
  /// Bandwidth currently held on `route` — equals the spec's demand for a
  /// healthy chain, less (possibly zero) for a degraded one.
  double reserved_gbps = 0;
  /// Degraded mode: repair was infeasible *now*, so the chain is parked —
  /// kept alive at reduced (possibly zero) bandwidth, instances on dead
  /// hardware terminated (those slots hold invalid ids) — instead of being
  /// torn down. The retry queue re-provisions it on recovery events.
  bool degraded = false;
  std::string degraded_reason;
};

struct OrchestratorStats {
  std::size_t chains_provisioned = 0;
  std::size_t chains_torn_down = 0;
  std::size_t provision_failures = 0;
  std::size_t chains_repaired = 0;   // refitted at full bandwidth after a failure
  std::size_t chains_lost = 0;       // torn down because repair was impossible
  std::size_t vnfs_relocated = 0;    // instances moved off failed hardware
  std::size_t chains_degraded = 0;   // entered degraded mode (cumulative)
  std::size_t chains_restored = 0;   // left degraded mode at full bandwidth
  // QoS allocator activity (zero under kStrictLadder):
  std::size_t chains_admitted_downgraded = 0;  // admitted below full demand
  std::size_t alloc_rebalances = 0;            // rebalance passes that changed something
  std::size_t alloc_downgrades = 0;            // chains shrunk by a rebalance
  std::size_t alloc_restores = 0;              // chains grown back by a rebalance
};

/// Threading contract: externally synchronized, single-writer. The retry
/// queue (retry_queue_) and recovery epoch are plain members mutated only
/// inside handle_*_failure / handle_*_recovery / drain_retry_queue on the
/// calling thread; nothing here is touched by Executor workers. Callers
/// that drive the orchestrator from several threads (the chaos suites)
/// must wrap every call in one lock, as ChaosRunner does.
class NetworkOrchestrator {
 public:
  /// The orchestrator borrows the cluster manager (clusters are built by
  /// the operator beforehand, §III) and owns the NFV/SDN control plane.
  NetworkOrchestrator(alvc::cluster::ClusterManager& clusters,
                      const alvc::nfv::VnfCatalog& catalog);

  /// Provisions a chain end to end onto the cluster serving spec.service:
  /// admission -> slice allocation -> placement -> VNF deployment ->
  /// routing -> rule installation. All-or-nothing: any failure rolls back.
  [[nodiscard]] alvc::util::Expected<NfcId> provision_chain(const alvc::nfv::NfcSpec& spec,
                                                            const PlacementStrategy& placement);

  /// Switches linear-chain routing between plain shortest paths (default)
  /// and the load-balanced k-shortest variant that avoids links other
  /// chains already reserved.
  void set_load_balanced_routing(bool enabled, std::size_t k = 4) noexcept {
    load_balanced_routing_ = enabled;
    routing_k_ = k;
  }

  /// Toggles the epoch-versioned route cache on the shortest-path hot path
  /// (provision, refit, migration). On by default; the differential suite
  /// flips it off to prove cached and uncached routing are bit-identical.
  /// Load-balanced routes never use the cache (they depend on the live
  /// bandwidth ledger, not just the slice subgraph).
  void set_route_cache_enabled(bool enabled) noexcept { route_cache_enabled_ = enabled; }
  [[nodiscard]] bool route_cache_enabled() const noexcept { return route_cache_enabled_; }
  [[nodiscard]] const RouteCache& route_cache() const noexcept { return route_cache_; }
  [[nodiscard]] RouteCache& route_cache() noexcept { return route_cache_; }

  /// Splits the control plane into `shard_count` cluster-agent shards
  /// (DESIGN.md §13): chains partition by backing cluster, and each shard
  /// owns its slice of the route cache, retry queue, and rebalance
  /// snapshot state. Read-only passes (sweep classification, rebalance
  /// snapshots, retry bookkeeping) fan out across shards on `executor`
  /// (serial when null); all mutations stay on the calling thread, applied
  /// in ascending chain-id order, so every observable result is
  /// byte-identical to the serial control plane at any shard count.
  /// `shard_count == 0` returns to the serial path (pending retries move
  /// back to the global queue). Live chains and queued retries migrate on
  /// every transition; route caches restart cold. The executor must
  /// outlive the orchestrator (or the next set_sharding call).
  void set_sharding(std::size_t shard_count, alvc::util::Executor* executor = nullptr);
  [[nodiscard]] bool sharded() const noexcept { return agent_ != nullptr; }
  /// Shards configured (0 = serial control plane).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return agent_ == nullptr ? 0 : agent_->shard_count();
  }
  [[nodiscard]] const ControlAgent* agent() const noexcept { return agent_.get(); }
  /// Every live route cache: the global one when serial, one per shard when
  /// sharded. For audits (StateAuditor checks coherence of each).
  [[nodiscard]] std::vector<const RouteCache*> route_caches() const;
  /// Cache counters summed over route_caches() — shard-count invariant,
  /// which the differential suite asserts.
  [[nodiscard]] RouteCacheStats aggregate_route_cache_stats() const;

  /// Selects the bandwidth allocation policy. kStrictLadder (default)
  /// preserves the legacy behavior bit-for-bit: admission hard-rejects,
  /// refits walk the 1/2/4/8 ladder, rebalance_bandwidth() is a no-op.
  /// kWaterFill / kPriorityDowngrade add admit-with-downgrade and the
  /// cross-chain rebalance on every provision/teardown/fault/recovery.
  void set_allocation_policy(AllocationPolicy policy) noexcept { allocator_.set_policy(policy); }
  [[nodiscard]] AllocationPolicy allocation_policy() const noexcept {
    return allocator_.policy();
  }
  /// Shared-ToR aggregate budget knob (see BandwidthAllocator); 0 disables.
  void set_tor_budget_factor(double factor) noexcept { allocator_.set_tor_budget_factor(factor); }
  [[nodiscard]] const BandwidthAllocator& allocator() const noexcept { return allocator_; }

  /// Re-runs the allocator over every routed chain and applies its plan:
  /// shrinks (sheds) over-budget chains, grows chains with headroom back up
  /// the ladder, marking degraded/restored as bandwidth moves. No-op under
  /// kStrictLadder. Called automatically after provision, teardown, and
  /// every failure/recovery handler; public so tests and operators can
  /// force a pass. Returns the number of chains whose reservation changed.
  std::size_t rebalance_bandwidth();

  /// Batch admission pre-screen: evaluates every spec's admission decision
  /// (against the cluster serving its service) without provisioning
  /// anything. Checks fan out to `executor` (serial when null) — safe
  /// because check() only reads — and results come back in input order,
  /// identical to calling admission serially; counters are then recorded
  /// once per spec in input order. Specs whose service has no cluster get
  /// kNotFound and touch no counter. Typical use: screen a provisioning
  /// wave cheaply, then provision_chain() the admitted ones.
  [[nodiscard]] std::vector<alvc::util::Status> preadmit_chains(
      std::span<const alvc::nfv::NfcSpec> specs, alvc::util::Executor* executor = nullptr);

  /// Provisions a chain with a complex processing order (paper §IV-A's
  /// "network forwarding graph"): nodes are placed like a linear chain in
  /// topological order, then routed per DAG edge (entry from the ingress
  /// ToR, every exit to the egress ToR). Same all-or-nothing semantics as
  /// provision_chain.
  [[nodiscard]] alvc::util::Expected<NfcId> provision_forwarding_graph(
      const alvc::nfv::GraphNfcSpec& spec, const PlacementStrategy& placement);

  /// Deletes a chain: rules out, VNFs terminated, slice released.
  [[nodiscard]] alvc::util::Status teardown_chain(NfcId id);

  /// Scales one function of a live chain ("modification/upgradation").
  [[nodiscard]] alvc::util::Status scale_function(NfcId id, std::size_t function_index,
                                                  double factor);

  /// Moves one function of a live chain to a specific host inside its
  /// slice (operator-driven migration, e.g. draining a router before
  /// maintenance). Re-routes and re-programs the chain. The target must be
  /// a slice member with capacity; kInvalidArgument/kCapacityExceeded
  /// otherwise, with the chain untouched.
  [[nodiscard]] alvc::util::Status migrate_function(NfcId id, std::size_t function_index,
                                                    const alvc::nfv::HostRef& target);

  /// Chains whose route crosses `ops` or whose VNFs are hosted on it.
  [[nodiscard]] std::vector<NfcId> chains_using_ops(alvc::util::OpsId ops) const;

  // ---- failure & recovery workflows ----
  //
  // Failure handlers: repair the affected ALs (ClusterManager), then
  // refit every impacted chain — relocate stranded instances, re-route,
  // re-program, re-reserve. Chains whose full-bandwidth refit is
  // infeasible *now* enter degraded mode (alive at reduced or zero
  // bandwidth) and join the bounded-retry queue instead of being torn
  // down. All handlers are idempotent and return the number of chains
  // refitted at full bandwidth.

  [[nodiscard]] alvc::util::Expected<std::size_t> handle_ops_failure(alvc::util::OpsId ops);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_tor_failure(alvc::util::TorId tor);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_server_failure(
      alvc::util::ServerId server);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_link_failure(alvc::util::TorId tor,
                                                                      alvc::util::OpsId ops);

  // Recovery handlers: re-integrate the repaired element (ClusterManager
  // rebuilds degraded clusters with it), refit healthy chains whose slice
  // shifted, then drain the retry queue — each eligible degraded chain
  // gets one full restoration attempt, with deterministic exponential
  // backoff (in recovery events, not wall time) between attempts. Return
  // the number of chains restored to full bandwidth.

  [[nodiscard]] alvc::util::Expected<std::size_t> handle_ops_recovery(alvc::util::OpsId ops);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_tor_recovery(alvc::util::TorId tor);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_server_recovery(
      alvc::util::ServerId server);
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_link_recovery(alvc::util::TorId tor,
                                                                       alvc::util::OpsId ops);

  /// Chains currently in degraded mode.
  [[nodiscard]] std::size_t degraded_chain_count() const noexcept;
  /// Degraded chains awaiting a retry (subset of degraded: bounded retries).
  [[nodiscard]] std::size_t retry_queue_size() const noexcept;

  [[nodiscard]] const ProvisionedChain* chain(NfcId id) const;
  [[nodiscard]] std::vector<const ProvisionedChain*> chains() const;
  [[nodiscard]] std::size_t chain_count() const noexcept { return chains_.size(); }

  [[nodiscard]] const OrchestratorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SliceManager& slices() const noexcept { return slices_; }
  [[nodiscard]] const sdn::SdnController& controller() const noexcept { return controller_; }
  [[nodiscard]] const sdn::CloudNfvManager& cloud() const noexcept { return cloud_; }
  [[nodiscard]] sdn::CloudNfvManager& cloud() noexcept { return cloud_; }
  [[nodiscard]] const AdmissionController& admission() const noexcept { return admission_; }
  [[nodiscard]] const BandwidthLedger& bandwidth() const noexcept { return bandwidth_; }
  /// Audit trail of every orchestration action, in order.
  [[nodiscard]] const sdn::ControlPlaneLog& control_log() const noexcept { return log_; }
  [[nodiscard]] const alvc::cluster::ClusterManager& clusters() const noexcept {
    return *clusters_;
  }

  /// Cross-chain isolation check: no switch carries rules of two chains
  /// whose slices differ... every rule of chain c sits on a switch of c's
  /// slice. Returns violations (empty = isolated).
  [[nodiscard]] std::vector<std::string> check_isolation() const;

 private:
  const alvc::cluster::VirtualCluster* cluster_for_service(alvc::util::ServiceId service) const;

  /// Linear-chain route ingress -> hosts -> egress with the cluster's
  /// default anchors, served from the route cache when enabled (identical
  /// to the plain router by construction — see route_cache.h).
  [[nodiscard]] alvc::util::Expected<ChainRoute> route_linear(
      const alvc::cluster::VirtualCluster& vc, std::span<const alvc::nfv::HostRef> hosts,
      alvc::nfv::PriorityClass cls);

  /// Cache serving `cluster`'s routes: the shard's when sharded, the
  /// global one otherwise.
  [[nodiscard]] RouteCache& active_route_cache(alvc::util::ClusterId cluster);

  [[nodiscard]] bool host_usable(const alvc::nfv::HostRef& host) const;
  [[nodiscard]] bool host_in_slice(const alvc::nfv::HostRef& host,
                                   const alvc::cluster::VirtualCluster& vc) const;
  /// True when the chain's route references dead or out-of-slice elements
  /// or rides a cut ToR-OPS cable.
  [[nodiscard]] bool route_broken(const ProvisionedChain& chain,
                                  const alvc::cluster::VirtualCluster& vc) const;
  /// True when the chain's placement or route references dead or
  /// out-of-slice elements and must be re-fitted.
  [[nodiscard]] bool chain_needs_refit(const ProvisionedChain& chain,
                                       const alvc::cluster::VirtualCluster* vc) const;
  /// Narrower check for chains already degraded: only their *live* residue
  /// matters — surviving instances on now-dead hardware or a now-broken
  /// partial route. Invalid (terminated) slots are expected, not a hazard.
  [[nodiscard]] bool degraded_chain_disturbed(const ProvisionedChain& chain,
                                              const alvc::cluster::VirtualCluster* vc) const;
  /// Removes the chain from the data plane: rules out, bandwidth released,
  /// route cleared, instances on unusable hosts terminated (slots invalid).
  void park_chain(ProvisionedChain& chain);
  /// Re-fits a parked chain: re-places invalid/bad instances inside the
  /// slice, re-routes, re-programs, and reserves bandwidth at the largest
  /// feasible fraction of the spec's demand. Returns the fraction achieved
  /// (1.0 = full service, 0 = nothing could be established).
  double fit_chain(ProvisionedChain& chain);
  /// Marks a parked chain degraded (fraction < 1 after a fit attempt).
  void mark_degraded(ProvisionedChain& chain, double fraction, const std::string& reason);

  /// What the sweep decided for one chain. Classification reads only
  /// topology failure state, AL membership, and the chain's own record —
  /// never the cloud pool, bandwidth ledger, or controller state that
  /// applying another chain's verdict mutates — so pre-classifying every
  /// chain (shard-parallel) and applying in ascending id order is
  /// byte-identical to the legacy classify-as-you-go loop.
  enum class SweepVerdict : int {
    kNone = 0,
    kRefitDegraded = 1,  // disturbed degraded chain: best-effort re-fit
    kRefit = 2,          // healthy chain needing a full-bandwidth refit
  };
  [[nodiscard]] SweepVerdict classify_chain(NfcId id) const;
  void apply_sweep_verdict(NfcId id, SweepVerdict verdict, std::size_t& repaired);
  /// Link keys of the chain's current route (rebalance snapshot), nullopt
  /// when the chain is gone or unrouted. Sorted, deduplicated.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> chain_link_keys(NfcId id) const;

  /// Refit-or-degrade pass; returns full-bandwidth repairs. With a null
  /// `scope` every chain is considered. A non-null scope (the fault's blast
  /// radius: every cluster whose AL the event examined) lets the sharded
  /// path walk only those clusters' membership indexes — sound because a
  /// chain outside the blast radius classifies kNone (each sweep settles
  /// all disturbances, so only the current event can create new work), and
  /// kNone verdicts are no-ops. The serial path always walks every chain;
  /// it is the reference the sharded differential compares against.
  std::size_t sweep_chains(const std::vector<alvc::util::ClusterId>* scope = nullptr);
  /// Clusters whose AL contains `server`'s primary ToR — the blast radius
  /// of a server event (server events never change an AL). Containment,
  /// not VM ownership: placement may use any server under the slice's
  /// ToRs, so a chain with no VM on the box can still be disturbed.
  /// Sorted, deduplicated.
  [[nodiscard]] std::vector<alvc::util::ClusterId> server_blast_radius(
      alvc::util::ServerId server) const;
  /// One restoration attempt per eligible retry entry; returns restores.
  std::size_t drain_retry_queue();
  void enqueue_retry(NfcId id);
  [[nodiscard]] std::vector<NfcId> sorted_chain_ids() const;

  alvc::cluster::ClusterManager* clusters_;
  const alvc::nfv::VnfCatalog* catalog_;
  sdn::CloudNfvManager cloud_;
  sdn::SdnController controller_;
  SliceManager slices_;
  AdmissionController admission_;
  BandwidthLedger bandwidth_;
  BandwidthAllocator allocator_;
  ChainRouter router_;
  RouteCache route_cache_;
  std::unordered_map<NfcId, ProvisionedChain> chains_;
  sdn::ControlPlaneLog log_;
  OrchestratorStats stats_;
  /// Builder used for AL repairs after ToR failures and on recoveries.
  alvc::cluster::VertexCoverAlBuilder repair_builder_;
  /// Sharded cluster-agent layer; null = serial control plane. When set,
  /// per-chain state (route cache entries, retry segments) lives in the
  /// agent's shards and retry_queue_ stays empty.
  std::unique_ptr<ControlAgent> agent_;
  std::vector<RetryEntry> retry_queue_;
  std::uint64_t recovery_epoch_ = 0;  // counts recovery events (backoff clock)
  NfcId::value_type next_id_ = 0;
  bool load_balanced_routing_ = false;
  bool route_cache_enabled_ = true;
  std::size_t routing_k_ = 4;
};

}  // namespace alvc::orchestrator
