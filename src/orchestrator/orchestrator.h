// The network orchestrator (paper §IV-B, Figs. 6-7).
//
// "On top of this architecture, we proposed a network orchestrator for
// multiple-tenant SDN-enabled networks. It is responsible for managing
// (provisioning, creation, modification, upgradation, and deletion) of
// multiple NFCs. It will logically divide the optical network into virtual
// slices and allocate each slice to a single NFC."
//
// NetworkOrchestrator composes every substrate:
//   ClusterManager  — VCs + ALs, OPS exclusivity            (§III)
//   SliceManager    — AL <-> NFC bijection                  (§IV-C)
//   AdmissionController — can this slice serve this chain?
//   PlacementStrategy   — hosts for each VNF                (§IV-D)
//   CloudNfvManager — lifecycle + capacity                  (§IV-B)
//   ChainRouter     — slice-internal forwarding path
//   SdnController   — flow-rule installation                (§IV-B)
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_manager.h"
#include "nfv/catalog.h"
#include "nfv/nfc.h"
#include "orchestrator/admission.h"
#include "orchestrator/bandwidth.h"
#include "orchestrator/oeo.h"
#include "orchestrator/placement.h"
#include "orchestrator/routing.h"
#include "orchestrator/slice.h"
#include "sdn/cloud_manager.h"
#include "sdn/controller.h"
#include "sdn/events.h"

namespace alvc::orchestrator {

using alvc::util::NfcId;

/// Everything the orchestrator knows about a live chain.
struct ProvisionedChain {
  alvc::nfv::NfcRecord record;
  alvc::util::ClusterId cluster;
  SliceId slice;
  std::vector<alvc::nfv::VnfInstanceId> instances;
  PlacementResult placement;
  ChainRoute route;
  std::size_t flow_rules = 0;  // rules the SDN controller installed
  /// Set for complex chains (paper's "network forwarding graph"); the
  /// record's linear spec then lists functions in topological order and
  /// placement.hosts[i] hosts graph node forwarding_order[i].
  std::optional<alvc::nfv::ForwardingGraph> graph;
  std::vector<std::size_t> forwarding_order;  // topo order used for placement
};

struct OrchestratorStats {
  std::size_t chains_provisioned = 0;
  std::size_t chains_torn_down = 0;
  std::size_t provision_failures = 0;
  std::size_t chains_repaired = 0;   // survived an OPS failure
  std::size_t chains_lost = 0;       // torn down because repair was impossible
  std::size_t vnfs_relocated = 0;    // instances moved off failed hardware
};

class NetworkOrchestrator {
 public:
  /// The orchestrator borrows the cluster manager (clusters are built by
  /// the operator beforehand, §III) and owns the NFV/SDN control plane.
  NetworkOrchestrator(alvc::cluster::ClusterManager& clusters,
                      const alvc::nfv::VnfCatalog& catalog);

  /// Provisions a chain end to end onto the cluster serving spec.service:
  /// admission -> slice allocation -> placement -> VNF deployment ->
  /// routing -> rule installation. All-or-nothing: any failure rolls back.
  [[nodiscard]] alvc::util::Expected<NfcId> provision_chain(const alvc::nfv::NfcSpec& spec,
                                                            const PlacementStrategy& placement);

  /// Switches linear-chain routing between plain shortest paths (default)
  /// and the load-balanced k-shortest variant that avoids links other
  /// chains already reserved.
  void set_load_balanced_routing(bool enabled, std::size_t k = 4) noexcept {
    load_balanced_routing_ = enabled;
    routing_k_ = k;
  }

  /// Batch admission pre-screen: evaluates every spec's admission decision
  /// (against the cluster serving its service) without provisioning
  /// anything. Checks fan out to `executor` (serial when null) — safe
  /// because check() only reads — and results come back in input order,
  /// identical to calling admission serially; counters are then recorded
  /// once per spec in input order. Specs whose service has no cluster get
  /// kNotFound and touch no counter. Typical use: screen a provisioning
  /// wave cheaply, then provision_chain() the admitted ones.
  [[nodiscard]] std::vector<alvc::util::Status> preadmit_chains(
      std::span<const alvc::nfv::NfcSpec> specs, alvc::util::Executor* executor = nullptr);

  /// Provisions a chain with a complex processing order (paper §IV-A's
  /// "network forwarding graph"): nodes are placed like a linear chain in
  /// topological order, then routed per DAG edge (entry from the ingress
  /// ToR, every exit to the egress ToR). Same all-or-nothing semantics as
  /// provision_chain.
  [[nodiscard]] alvc::util::Expected<NfcId> provision_forwarding_graph(
      const alvc::nfv::GraphNfcSpec& spec, const PlacementStrategy& placement);

  /// Deletes a chain: rules out, VNFs terminated, slice released.
  [[nodiscard]] alvc::util::Status teardown_chain(NfcId id);

  /// Scales one function of a live chain ("modification/upgradation").
  [[nodiscard]] alvc::util::Status scale_function(NfcId id, std::size_t function_index,
                                                  double factor);

  /// Moves one function of a live chain to a specific host inside its
  /// slice (operator-driven migration, e.g. draining a router before
  /// maintenance). Re-routes and re-programs the chain. The target must be
  /// a slice member with capacity; kInvalidArgument/kCapacityExceeded
  /// otherwise, with the chain untouched.
  [[nodiscard]] alvc::util::Status migrate_function(NfcId id, std::size_t function_index,
                                                    const alvc::nfv::HostRef& target);

  /// Chains whose route crosses `ops` or whose VNFs are hosted on it.
  [[nodiscard]] std::vector<NfcId> chains_using_ops(alvc::util::OpsId ops) const;

  /// Full OPS-failure workflow: repairs the owning AL (ClusterManager),
  /// relocates VNF instances stranded on the failed router, re-routes and
  /// re-programs every affected chain. Unrepairable chains are torn down.
  /// Returns the number of chains repaired.
  [[nodiscard]] alvc::util::Expected<std::size_t> handle_ops_failure(alvc::util::OpsId ops);

  [[nodiscard]] const ProvisionedChain* chain(NfcId id) const;
  [[nodiscard]] std::vector<const ProvisionedChain*> chains() const;
  [[nodiscard]] std::size_t chain_count() const noexcept { return chains_.size(); }

  [[nodiscard]] const OrchestratorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SliceManager& slices() const noexcept { return slices_; }
  [[nodiscard]] const sdn::SdnController& controller() const noexcept { return controller_; }
  [[nodiscard]] const sdn::CloudNfvManager& cloud() const noexcept { return cloud_; }
  [[nodiscard]] sdn::CloudNfvManager& cloud() noexcept { return cloud_; }
  [[nodiscard]] const AdmissionController& admission() const noexcept { return admission_; }
  [[nodiscard]] const BandwidthLedger& bandwidth() const noexcept { return bandwidth_; }
  /// Audit trail of every orchestration action, in order.
  [[nodiscard]] const sdn::ControlPlaneLog& control_log() const noexcept { return log_; }
  [[nodiscard]] const alvc::cluster::ClusterManager& clusters() const noexcept {
    return *clusters_;
  }

  /// Cross-chain isolation check: no switch carries rules of two chains
  /// whose slices differ... every rule of chain c sits on a switch of c's
  /// slice. Returns violations (empty = isolated).
  [[nodiscard]] std::vector<std::string> check_isolation() const;

 private:
  const alvc::cluster::VirtualCluster* cluster_for_service(alvc::util::ServiceId service) const;

  alvc::cluster::ClusterManager* clusters_;
  const alvc::nfv::VnfCatalog* catalog_;
  sdn::CloudNfvManager cloud_;
  sdn::SdnController controller_;
  SliceManager slices_;
  AdmissionController admission_;
  BandwidthLedger bandwidth_;
  ChainRouter router_;
  std::unordered_map<NfcId, ProvisionedChain> chains_;
  sdn::ControlPlaneLog log_;
  OrchestratorStats stats_;
  NfcId::value_type next_id_ = 0;
  bool load_balanced_routing_ = false;
  std::size_t routing_k_ = 4;
};

}  // namespace alvc::orchestrator
