#include "orchestrator/placement.h"

#include <algorithm>
#include <limits>

namespace alvc::orchestrator {

using alvc::nfv::HostingPool;
using alvc::nfv::is_optical_host;
using alvc::topology::Resources;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::Rng;
using alvc::util::ServerId;

std::vector<OpsId> PlacementContext::slice_optical_hosts() const {
  std::vector<OpsId> out;
  for (OpsId o : cluster->layer.opss) {
    const auto& ops = topo->ops(o);
    if (ops.optoelectronic && !ops.failed) out.push_back(o);
  }
  return out;
}

std::vector<ServerId> PlacementContext::slice_electronic_hosts() const {
  std::vector<ServerId> out;
  for (alvc::util::TorId t : cluster->layer.tors) {
    const auto& tor = topo->tor(t);
    if (tor.failed) continue;  // the whole rack is unreachable
    for (ServerId s : tor.servers) {
      if (!topo->server(s).failed) out.push_back(s);
    }
  }
  return out;
}

void finalize_placement(PlacementResult& result) {
  result.conversions = count_conversions(result.hosts);
  result.optical_count = 0;
  result.electronic_count = 0;
  for (const HostRef& host : result.hosts) {
    if (is_optical_host(host)) {
      ++result.optical_count;
    } else {
      ++result.electronic_count;
    }
  }
}

namespace {

/// Best-fit: the feasible host with the least free CPU after placement
/// (keeps big holes for big VNFs).
template <typename Id>
std::optional<Id> best_fit(const HostingPool& pool, const std::vector<Id>& candidates,
                           const Resources& demand) {
  std::optional<Id> best;
  double best_slack = std::numeric_limits<double>::infinity();
  for (Id id : candidates) {
    const HostRef ref{id};
    if (!pool.fits(ref, demand)) continue;
    const double slack = pool.free_capacity(ref).cpu_cores - demand.cpu_cores;
    if (slack < best_slack) {
      best_slack = slack;
      best = id;
    }
  }
  return best;
}

/// Rolls back every reservation in `hosts` (parallel to `demands`).
void rollback(HostingPool& pool, const std::vector<HostRef>& hosts,
              const std::vector<Resources>& demands) {
  for (std::size_t i = 0; i < hosts.size(); ++i) pool.release(hosts[i], demands[i]);
}

/// Places one chain following a fixed domain pattern (optical[i] says
/// whether function i should go optical). Returns nullopt when some
/// function cannot be placed in its prescribed domain.
std::optional<std::vector<HostRef>> place_with_pattern(
    const alvc::nfv::NfcSpec& spec, PlacementContext& context,
    const std::vector<char>& optical_flags) {
  const auto optical = context.slice_optical_hosts();
  const auto electronic = context.slice_electronic_hosts();
  std::vector<HostRef> hosts;
  std::vector<Resources> demands;
  for (std::size_t i = 0; i < spec.functions.size(); ++i) {
    const auto& desc = context.catalog->descriptor(spec.functions[i]);
    std::optional<HostRef> chosen;
    if (optical_flags[i]) {
      if (!desc.electronic_only) {
        if (const auto pick = best_fit(*context.pool, optical, desc.demand)) {
          chosen = HostRef{*pick};
        }
      }
    } else {
      if (const auto pick = best_fit(*context.pool, electronic, desc.demand)) {
        chosen = HostRef{*pick};
      }
    }
    if (!chosen) {
      rollback(*context.pool, hosts, demands);
      return std::nullopt;
    }
    if (!context.pool->reserve(*chosen, desc.demand).is_ok()) {
      rollback(*context.pool, hosts, demands);
      return std::nullopt;
    }
    hosts.push_back(*chosen);
    demands.push_back(desc.demand);
  }
  return hosts;
}

Error placement_failure(const alvc::nfv::NfcSpec& spec) {
  return Error{ErrorCode::kInfeasible, "cannot place chain '" + spec.name + "' in its slice"};
}

}  // namespace

Expected<PlacementResult> ElectronicOnlyPlacement::place(const alvc::nfv::NfcSpec& spec,
                                                         PlacementContext& context) const {
  if (spec.functions.empty()) return Error{ErrorCode::kInvalidArgument, "empty chain"};
  const std::vector<char> pattern(spec.functions.size(), 0);
  auto hosts = place_with_pattern(spec, context, pattern);
  if (!hosts) return placement_failure(spec);
  PlacementResult result{.hosts = std::move(*hosts)};
  finalize_placement(result);
  return result;
}

Expected<PlacementResult> RandomPlacement::place(const alvc::nfv::NfcSpec& spec,
                                                 PlacementContext& context) const {
  if (spec.functions.empty()) return Error{ErrorCode::kInvalidArgument, "empty chain"};
  Rng rng(seed_ ^ (0x2545f4914f6cdd1dULL * (spec.tenant.value() + 1)));
  const auto optical = context.slice_optical_hosts();
  const auto electronic = context.slice_electronic_hosts();
  std::vector<HostRef> hosts;
  std::vector<Resources> demands;
  for (alvc::util::VnfId fn : spec.functions) {
    const auto& desc = context.catalog->descriptor(fn);
    // Collect every feasible host, then draw uniformly.
    std::vector<HostRef> feasible;
    if (!desc.electronic_only) {
      for (OpsId o : optical) {
        if (context.pool->fits(HostRef{o}, desc.demand)) feasible.emplace_back(o);
      }
    }
    for (ServerId s : electronic) {
      if (context.pool->fits(HostRef{s}, desc.demand)) feasible.emplace_back(s);
    }
    if (feasible.empty()) {
      rollback(*context.pool, hosts, demands);
      return placement_failure(spec);
    }
    const HostRef chosen = feasible[rng.uniform_index(feasible.size())];
    if (!context.pool->reserve(chosen, desc.demand).is_ok()) {
      rollback(*context.pool, hosts, demands);
      return placement_failure(spec);
    }
    hosts.push_back(chosen);
    demands.push_back(desc.demand);
  }
  PlacementResult result{.hosts = std::move(hosts)};
  finalize_placement(result);
  return result;
}

Expected<PlacementResult> GreedyOpticalPlacement::place(const alvc::nfv::NfcSpec& spec,
                                                        PlacementContext& context) const {
  if (spec.functions.empty()) return Error{ErrorCode::kInvalidArgument, "empty chain"};
  const auto optical = context.slice_optical_hosts();
  const auto electronic = context.slice_electronic_hosts();
  std::vector<HostRef> hosts;
  std::vector<Resources> demands;
  for (alvc::util::VnfId fn : spec.functions) {
    const auto& desc = context.catalog->descriptor(fn);
    std::optional<HostRef> chosen;
    if (!desc.electronic_only) {
      if (const auto pick = best_fit(*context.pool, optical, desc.demand)) {
        chosen = HostRef{*pick};
      }
    }
    if (!chosen) {
      if (const auto pick = best_fit(*context.pool, electronic, desc.demand)) {
        chosen = HostRef{*pick};
      }
    }
    if (!chosen || !context.pool->reserve(*chosen, desc.demand).is_ok()) {
      rollback(*context.pool, hosts, demands);
      return placement_failure(spec);
    }
    hosts.push_back(*chosen);
    demands.push_back(desc.demand);
  }
  PlacementResult result{.hosts = std::move(hosts)};
  finalize_placement(result);
  return result;
}

Expected<PlacementResult> OeoMinimizingPlacement::place(const alvc::nfv::NfcSpec& spec,
                                                        PlacementContext& context) const {
  if (spec.functions.empty()) return Error{ErrorCode::kInvalidArgument, "empty chain"};
  const std::size_t n = spec.functions.size();
  if (n > exhaustive_limit_) {
    return GreedyOpticalPlacement{}.place(spec, context);
  }
  // Try every optical/electronic pattern on a scratch copy of the pool;
  // keep the one with the fewest mid-chain conversions (ties: more optical
  // functions, then first found). Patterns that pin electronic-only VNFs
  // optical are skipped up front.
  std::optional<std::vector<char>> best_pattern;
  OeoCount best_count;
  std::size_t best_optical = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<char> pattern(n, 0);
    bool legal = true;
    std::size_t optical_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        if (context.catalog->descriptor(spec.functions[i]).electronic_only) {
          legal = false;
          break;
        }
        pattern[i] = 1;
        ++optical_count;
      }
    }
    if (!legal) continue;
    HostingPool scratch = *context.pool;  // value copy, same topology view
    PlacementContext scratch_context = context;
    scratch_context.pool = &scratch;
    const auto hosts = place_with_pattern(spec, scratch_context, pattern);
    if (!hosts) continue;
    const OeoCount count = count_conversions(*hosts);
    const bool better = !best_pattern || count.mid_chain < best_count.mid_chain ||
                        (count.mid_chain == best_count.mid_chain && optical_count > best_optical);
    if (better) {
      best_pattern = pattern;
      best_count = count;
      best_optical = optical_count;
    }
  }
  if (!best_pattern) return placement_failure(spec);
  auto hosts = place_with_pattern(spec, context, *best_pattern);
  if (!hosts) return placement_failure(spec);  // pool changed since scan: defensive
  PlacementResult result{.hosts = std::move(*hosts)};
  finalize_placement(result);
  return result;
}

}  // namespace alvc::orchestrator
