#include "orchestrator/orchestrator.h"

#include <algorithm>
#include <unordered_set>

#include "telemetry/telemetry.h"

namespace alvc::orchestrator {

using alvc::cluster::VirtualCluster;
using alvc::nfv::HostRef;
using alvc::util::ClusterId;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Expected;
using alvc::util::ServiceId;
using alvc::util::Status;

NetworkOrchestrator::NetworkOrchestrator(alvc::cluster::ClusterManager& clusters,
                                         const alvc::nfv::VnfCatalog& catalog)
    : clusters_(&clusters),
      catalog_(&catalog),
      cloud_(catalog, clusters.topology()),
      controller_(clusters.topology()),
      admission_(clusters.topology(), catalog),
      bandwidth_(clusters.topology()),
      router_(clusters.topology()),
      route_cache_(clusters.topology()) {}

Expected<ChainRoute> NetworkOrchestrator::route_linear(const VirtualCluster& vc,
                                                       std::span<const HostRef> hosts,
                                                       alvc::nfv::PriorityClass cls) {
  const alvc::util::TorId ingress = vc.layer.tors.front();
  const alvc::util::TorId egress = vc.layer.tors.back();
  // Plain shortest-path legs are bandwidth-independent, so every cached
  // route lives under the kFull tier; degraded refits reuse the same path
  // at a lower reservation rather than re-routing per rung. The priority
  // class still partitions the key: HIPRI and LOPRI legs never alias.
  if (route_cache_enabled_) {
    return active_route_cache(vc.id).route(router_, vc, ingress, egress, hosts,
                                           BandwidthTier::kFull, cls);
  }
  return router_.route(vc, ingress, egress, hosts);
}

RouteCache& NetworkOrchestrator::active_route_cache(ClusterId cluster) {
  // Route-cache keys are per-cluster (LegKey.cluster), so per-shard caches
  // partition the key space: the union over shards behaves exactly like the
  // one global cache.
  return agent_ != nullptr ? agent_->shard_for_cluster(cluster).cache() : route_cache_;
}

const VirtualCluster* NetworkOrchestrator::cluster_for_service(ServiceId service) const {
  return clusters_->find_by_service(service);
}

std::vector<Status> NetworkOrchestrator::preadmit_chains(
    std::span<const alvc::nfv::NfcSpec> specs, alvc::util::Executor* executor) {
  ALVC_SPAN(span, "orchestrator.preadmit_chains");
  // A sharded control plane lends its executor to the screen by default.
  if (executor == nullptr && agent_ != nullptr) executor = agent_->executor();
  struct Screened {
    const VirtualCluster* vc = nullptr;
    AdmissionDecision decision;
  };
  std::vector<Screened> screened(specs.size());
  // Resolve clusters up front (reads clusters_, not thread-safe to mix with
  // mutation anyway; the checks themselves are pure reads).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    screened[i].vc = cluster_for_service(specs[i].service);
  }
  const auto check_one = [&](std::size_t i) {
    if (screened[i].vc == nullptr) {
      screened[i].decision.status =
          Error{ErrorCode::kNotFound,
                "no cluster serves service " + std::to_string(specs[i].service.value())};
      return;
    }
    screened[i].decision = admission_.check(specs[i], *screened[i].vc, cloud_.pool());
  };
  if (executor != nullptr) {
    auto tasks = executor->new_task_group();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      tasks->submit([&, i] { check_one(i); });
    }
    tasks->wait_all();
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) check_one(i);
  }
  // Record counters serially, in input order, so stats match a serial run.
  std::vector<Status> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (screened[i].vc != nullptr) admission_.record(screened[i].decision);
    results.push_back(screened[i].decision.status);
  }
  return results;
}

Expected<NfcId> NetworkOrchestrator::provision_chain(const alvc::nfv::NfcSpec& spec,
                                                     const PlacementStrategy& placement) {
  ALVC_SPAN(span, "orchestrator.provision_chain");
  const VirtualCluster* vc = cluster_for_service(spec.service);
  if (vc == nullptr) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kNotFound,
                 "no cluster serves service " + std::to_string(spec.service.value())};
  }
  if (vc->layer.tors.empty()) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kInfeasible, "cluster has an empty abstraction layer"};
  }
  const AdmissionDecision admitted =
      admission_.admit_with_policy(spec, *vc, cloud_.pool(), allocator_.policy());
  if (!admitted.status.is_ok()) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return admitted.status.error();
  }
  // Under a QoS policy admission may grant a lower ladder rung than the
  // spec demands (admit-with-downgrade); everything downstream provisions
  // at the granted rate.
  const double granted_gbps = admitted.granted_gbps;
  const NfcId id{next_id_++};
  auto slice = slices_.allocate(vc->id, id, granted_gbps, spec.priority);
  if (!slice) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return slice.error();
  }

  PlacementContext context{.topo = &clusters_->topology(),
                           .cluster = vc,
                           .catalog = catalog_,
                           .pool = &cloud_.pool()};
  auto placed = placement.place(spec, context);
  if (!placed) {
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return placed.error();
  }
  // place() reserved capacity directly in the pool; release those raw
  // reservations and re-reserve through the cloud manager so lifecycle and
  // capacity stay coupled.
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    cloud_.pool().release(placed->hosts[i],
                          catalog_->descriptor(spec.functions[i]).demand);
  }
  std::vector<alvc::nfv::VnfInstanceId> instances;
  bool deploy_failed = false;
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    auto inst = cloud_.deploy(spec.functions[i], placed->hosts[i]);
    if (!inst) {
      deploy_failed = true;
      break;
    }
    instances.push_back(*inst);
  }
  if (deploy_failed) {
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kInternal, "deployment failed after successful placement"};
  }

  // Route ingress ToR -> hosts -> egress ToR inside the slice. Default
  // anchors: the cluster's first and last ToRs.
  const alvc::util::TorId ingress = vc->layer.tors.front();
  const alvc::util::TorId egress = vc->layer.tors.back();
  auto route = load_balanced_routing_
                   ? router_.route_balanced(*vc, ingress, egress, placed->hosts, bandwidth_,
                                            routing_k_)
                   : route_linear(*vc, placed->hosts, spec.priority);
  if (!route) {
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return route.error();
  }
  std::size_t rules = 0;
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) {
      controller_.remove_chain(id);
      for (auto inst : instances) {
        ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                           "unwinding a failed provision; the instance is dead either way");
      }
      ALVC_IGNORE_STATUS(slices_.release(id),
                         "unwinding a failed provision; slice just allocated");
      ++stats_.provision_failures;
      ALVC_COUNT("orchestrator.provision.failures");
      return status.error();
    }
  }
  if (auto status = bandwidth_.reserve_walk(route->vertices, granted_gbps); !status.is_ok()) {
    controller_.remove_chain(id);
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return status.error();
  }
  rules = controller_.chain_rule_count(id);

  ALVC_OBSERVE("orchestrator.route.path_length", 0, 64, 32,
               static_cast<double>(route->vertices.size()));
  ALVC_OBSERVE("orchestrator.route.conversions", 0, 16, 16,
               static_cast<double>(placed->conversions.mid_chain));
  // Without the abstraction layer every inter-function hop would cost an
  // O/E/O conversion; mid-chain conversions actually incurred are the rest.
  ALVC_COUNT_N("orchestrator.oeo.conversions_saved",
               spec.functions.size() > placed->conversions.mid_chain
                   ? spec.functions.size() - placed->conversions.mid_chain
                   : 0);

  ProvisionedChain chain{.record = alvc::nfv::NfcRecord{.id = id, .spec = spec},
                         .cluster = vc->id,
                         .slice = *slice,
                         .instances = std::move(instances),
                         .placement = std::move(*placed),
                         .route = std::move(*route),
                         .flow_rules = rules,
                         .reserved_gbps = granted_gbps};
  auto [chain_it, inserted] = chains_.emplace(id, std::move(chain));
  if (agent_ != nullptr) agent_->register_chain(id, vc->id);
  log_.append(sdn::ControlEventType::kSliceAllocated, slice->value());
  log_.append(sdn::ControlEventType::kChainProvisioned, id.value(), spec.name);
  ++stats_.chains_provisioned;
  ALVC_COUNT("orchestrator.chains.provisioned");
  if (granted_gbps + 1e-9 < spec.bandwidth_gbps) {
    ++stats_.chains_admitted_downgraded;
    mark_degraded(chain_it->second, granted_gbps / spec.bandwidth_gbps,
                  "admitted at reduced bandwidth under overload");
  }
  rebalance_bandwidth();  // no-op under kStrictLadder
  return id;
}

Expected<NfcId> NetworkOrchestrator::provision_forwarding_graph(
    const alvc::nfv::GraphNfcSpec& gspec, const PlacementStrategy& placement) {
  ALVC_SPAN(span, "orchestrator.provision_forwarding_graph");
  if (auto status = gspec.graph.validate(); !status.is_ok()) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return status.error();
  }
  const alvc::nfv::NfcSpec spec = gspec.to_linear_spec();
  const VirtualCluster* vc = cluster_for_service(spec.service);
  if (vc == nullptr) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kNotFound,
                 "no cluster serves service " + std::to_string(spec.service.value())};
  }
  if (vc->layer.tors.empty()) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kInfeasible, "cluster has an empty abstraction layer"};
  }
  const AdmissionDecision admitted =
      admission_.admit_with_policy(spec, *vc, cloud_.pool(), allocator_.policy());
  if (!admitted.status.is_ok()) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return admitted.status.error();
  }
  const double granted_gbps = admitted.granted_gbps;
  const NfcId id{next_id_++};
  auto slice = slices_.allocate(vc->id, id, granted_gbps, spec.priority);
  if (!slice) {
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return slice.error();
  }

  PlacementContext context{.topo = &clusters_->topology(),
                           .cluster = vc,
                           .catalog = catalog_,
                           .pool = &cloud_.pool()};
  auto placed = placement.place(spec, context);
  if (!placed) {
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return placed.error();
  }
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    cloud_.pool().release(placed->hosts[i], catalog_->descriptor(spec.functions[i]).demand);
  }
  std::vector<alvc::nfv::VnfInstanceId> instances;
  bool deploy_failed = false;
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    auto inst = cloud_.deploy(spec.functions[i], placed->hosts[i]);
    if (!inst) {
      deploy_failed = true;
      break;
    }
    instances.push_back(*inst);
  }
  if (deploy_failed) {
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return Error{ErrorCode::kInternal, "deployment failed after successful placement"};
  }

  // Map topological placement order back to node indices for routing.
  const auto order = gspec.graph.topological_order();
  std::vector<HostRef> node_hosts(order.size(), HostRef{alvc::util::ServerId{0}});
  for (std::size_t i = 0; i < order.size(); ++i) node_hosts[order[i]] = placed->hosts[i];

  const alvc::util::TorId ingress = vc->layer.tors.front();
  const alvc::util::TorId egress = vc->layer.tors.back();
  auto route = route_cache_enabled_
                   ? active_route_cache(vc->id).route_graph(router_, *vc, ingress, egress,
                                                            gspec.graph, node_hosts,
                                                            BandwidthTier::kFull, spec.priority)
                   : router_.route_graph(*vc, ingress, egress, gspec.graph, node_hosts);
  if (!route) {
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return route.error();
  }
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) {
      controller_.remove_chain(id);
      for (auto inst : instances) {
        ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                           "unwinding a failed provision; the instance is dead either way");
      }
      ALVC_IGNORE_STATUS(slices_.release(id),
                         "unwinding a failed provision; slice just allocated");
      ++stats_.provision_failures;
      ALVC_COUNT("orchestrator.provision.failures");
      return status.error();
    }
  }
  if (auto status = bandwidth_.reserve_walk(route->vertices, granted_gbps); !status.is_ok()) {
    controller_.remove_chain(id);
    for (auto inst : instances) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst),
                         "unwinding a failed provision; the instance is dead either way");
    }
    ALVC_IGNORE_STATUS(slices_.release(id), "unwinding a failed provision; slice just allocated");
    ++stats_.provision_failures;
    ALVC_COUNT("orchestrator.provision.failures");
    return status.error();
  }
  // The DAG's conversion count is authoritative for this chain.
  placed->conversions = route->conversions;

  ALVC_OBSERVE("orchestrator.route.path_length", 0, 64, 32,
               static_cast<double>(route->vertices.size()));
  ALVC_OBSERVE("orchestrator.route.conversions", 0, 16, 16,
               static_cast<double>(placed->conversions.mid_chain));
  ALVC_COUNT_N("orchestrator.oeo.conversions_saved",
               spec.functions.size() > placed->conversions.mid_chain
                   ? spec.functions.size() - placed->conversions.mid_chain
                   : 0);

  ProvisionedChain chain{.record = alvc::nfv::NfcRecord{.id = id, .spec = spec},
                         .cluster = vc->id,
                         .slice = *slice,
                         .instances = std::move(instances),
                         .placement = std::move(*placed),
                         .route = std::move(*route),
                         .flow_rules = controller_.chain_rule_count(id),
                         .graph = gspec.graph,
                         .forwarding_order = order,
                         .reserved_gbps = granted_gbps};
  auto [chain_it, inserted] = chains_.emplace(id, std::move(chain));
  if (agent_ != nullptr) agent_->register_chain(id, vc->id);
  log_.append(sdn::ControlEventType::kSliceAllocated, slice->value());
  log_.append(sdn::ControlEventType::kChainProvisioned, id.value(), spec.name);
  ++stats_.chains_provisioned;
  ALVC_COUNT("orchestrator.chains.provisioned");
  if (granted_gbps + 1e-9 < spec.bandwidth_gbps) {
    ++stats_.chains_admitted_downgraded;
    mark_degraded(chain_it->second, granted_gbps / spec.bandwidth_gbps,
                  "admitted at reduced bandwidth under overload");
  }
  rebalance_bandwidth();  // no-op under kStrictLadder
  return id;
}

Status NetworkOrchestrator::teardown_chain(NfcId id) {
  ALVC_SPAN(span, "orchestrator.teardown_chain");
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  controller_.remove_chain(id);
  for (auto inst : it->second.instances) {
    // Degraded slots hold invalid ids; live ones must go regardless.
    if (inst.valid()) {
      ALVC_IGNORE_STATUS(cloud_.terminate(inst), "teardown: chain is going away regardless");
    }
  }
  bandwidth_.release_walk(it->second.route.vertices, it->second.reserved_gbps);
  ALVC_IGNORE_STATUS(slices_.release(id), "teardown: chain is going away regardless");
  // Cluster ids can be reused by a later build; a reused id must never see
  // this tenant's paths, so teardown drops them eagerly instead of waiting
  // for the epoch to catch the mismatch.
  active_route_cache(it->second.cluster).invalidate_slice(it->second.cluster);
  if (agent_ != nullptr) agent_->unregister_chain(id, it->second.cluster);
  chains_.erase(it);
  log_.append(sdn::ControlEventType::kSliceReleased, id.value());
  log_.append(sdn::ControlEventType::kChainTornDown, id.value());
  ++stats_.chains_torn_down;
  ALVC_COUNT("orchestrator.chains.torn_down");
  rebalance_bandwidth();  // freed capacity lets shed chains climb back
  return Status::ok();
}

Status NetworkOrchestrator::scale_function(NfcId id, std::size_t function_index, double factor) {
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  if (it->second.degraded) {
    return Error{ErrorCode::kRejected, "chain is degraded; wait for restoration"};
  }
  if (function_index >= it->second.instances.size()) {
    return Error{ErrorCode::kInvalidArgument, "function index out of range"};
  }
  return cloud_.scale(it->second.instances[function_index], factor);
}

Status NetworkOrchestrator::migrate_function(NfcId id, std::size_t function_index,
                                             const HostRef& target) {
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  ProvisionedChain& chain = it->second;
  if (chain.degraded) {
    return Error{ErrorCode::kRejected, "chain is degraded; wait for restoration"};
  }
  if (function_index >= chain.placement.hosts.size()) {
    return Error{ErrorCode::kInvalidArgument, "function index out of range"};
  }
  const alvc::cluster::VirtualCluster* vc = clusters_->find(chain.cluster);
  if (vc == nullptr) return Error{ErrorCode::kInternal, "chain references a dead cluster"};

  // Target must be inside the slice.
  bool in_slice = false;
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&target)) {
    const auto& topo = clusters_->topology();
    in_slice = vc->layer.contains_ops(*ops) && topo.ops(*ops).optoelectronic &&
               topo.ops_usable(*ops);
  } else {
    const auto server = std::get<alvc::util::ServerId>(target);
    in_slice = vc->layer.contains_tor(clusters_->topology().server(server).tor);
  }
  if (!in_slice) {
    return Error{ErrorCode::kInvalidArgument, "migration target is outside the chain's slice"};
  }
  const auto& desc = catalog_->descriptor(chain.record.spec.functions[function_index]);
  if (desc.electronic_only && alvc::nfv::is_optical_host(target)) {
    return Error{ErrorCode::kInvalidArgument, "VNF is pinned to the electronic domain"};
  }
  if (chain.placement.hosts[function_index] == target) return Status::ok();
  if (!cloud_.pool().fits(target, desc.demand)) {
    return Error{ErrorCode::kCapacityExceeded, "target host cannot take the VNF"};
  }

  // Tentatively compute the new route before committing anything.
  auto hosts = chain.placement.hosts;
  hosts[function_index] = target;
  auto route = route_linear(*vc, hosts, chain.record.spec.priority);
  if (!route) return route.error();
  // Move the bandwidth reservation (conservative: new walk reserved while
  // the old one is still held, so shared links must fit both briefly).
  const double gbps = chain.reserved_gbps;
  if (auto status = bandwidth_.reserve_walk(route->vertices, gbps); !status.is_ok()) {
    return status.error();
  }
  bandwidth_.release_walk(chain.route.vertices, gbps);

  // Commit: move the instance, swap route and rules.
  ALVC_IGNORE_STATUS(cloud_.terminate(chain.instances[function_index]),
                     "migration commit point: the old instance must go; a deploy "
                     "failure on the target is surfaced just below");
  auto fresh = cloud_.deploy(chain.record.spec.functions[function_index], target);
  if (!fresh) return fresh.error();  // capacity raced away; old instance already gone
  chain.instances[function_index] = *fresh;
  chain.placement.hosts[function_index] = target;
  finalize_placement(chain.placement);
  controller_.remove_chain(id);
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) return status;
  }
  chain.route = std::move(*route);
  chain.flow_rules = controller_.chain_rule_count(id);
  log_.append(sdn::ControlEventType::kVnfRelocated, id.value(),
              "operator migration of function " + std::to_string(function_index));
  ++stats_.vnfs_relocated;
  return Status::ok();
}

std::vector<NfcId> NetworkOrchestrator::chains_using_ops(alvc::util::OpsId ops) const {
  const auto& topo = clusters_->topology();
  const std::size_t vertex = topo.ops_vertex(ops);
  std::vector<NfcId> affected;
  for (const auto& [id, chain] : chains_) {
    bool hit = std::find(chain.route.vertices.begin(), chain.route.vertices.end(), vertex) !=
               chain.route.vertices.end();
    if (!hit) {
      for (const HostRef& host : chain.placement.hosts) {
        if (const auto* o = std::get_if<alvc::util::OpsId>(&host); o != nullptr && *o == ops) {
          hit = true;
          break;
        }
      }
    }
    if (hit) affected.push_back(id);
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

// ---- failure & recovery workflows ----

bool NetworkOrchestrator::host_usable(const HostRef& host) const {
  const auto& topo = clusters_->topology();
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) return topo.ops_usable(*ops);
  const auto server = std::get<alvc::util::ServerId>(host);
  return topo.server_usable(server) && topo.tor_usable(topo.server(server).tor);
}

bool NetworkOrchestrator::host_in_slice(const HostRef& host,
                                        const alvc::cluster::VirtualCluster& vc) const {
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) return vc.layer.contains_ops(*ops);
  const auto server = std::get<alvc::util::ServerId>(host);
  return vc.layer.contains_tor(clusters_->topology().server(server).tor);
}

bool NetworkOrchestrator::route_broken(const ProvisionedChain& chain,
                                       const alvc::cluster::VirtualCluster& vc) const {
  const auto& topo = clusters_->topology();
  for (std::size_t v : chain.route.vertices) {
    if (topo.is_ops_vertex(v)) {
      const auto ops = topo.vertex_to_ops(v);
      if (!topo.ops_usable(ops) || !vc.layer.contains_ops(ops)) return true;
    } else {
      const auto tor = topo.vertex_to_tor(v);
      if (!topo.tor_usable(tor) || !vc.layer.contains_tor(tor)) return true;
    }
  }
  // A cut cable breaks the walk even when both endpoints survive.
  for (std::size_t i = 0; i + 1 < chain.route.vertices.size(); ++i) {
    const std::size_t a = chain.route.vertices[i];
    const std::size_t b = chain.route.vertices[i + 1];
    if (topo.is_ops_vertex(a) == topo.is_ops_vertex(b)) continue;
    const std::size_t tor_v = topo.is_ops_vertex(a) ? b : a;
    const std::size_t ops_v = topo.is_ops_vertex(a) ? a : b;
    if (topo.link_failed(topo.vertex_to_tor(tor_v), topo.vertex_to_ops(ops_v))) return true;
  }
  return false;
}

bool NetworkOrchestrator::chain_needs_refit(const ProvisionedChain& chain,
                                            const alvc::cluster::VirtualCluster* vc) const {
  if (vc == nullptr || vc->layer.tors.empty()) return true;
  for (std::size_t i = 0; i < chain.placement.hosts.size(); ++i) {
    if (!chain.instances[i].valid()) return true;
    if (!host_usable(chain.placement.hosts[i])) return true;
    if (!host_in_slice(chain.placement.hosts[i], *vc)) return true;
  }
  return route_broken(chain, *vc);
}

bool NetworkOrchestrator::degraded_chain_disturbed(const ProvisionedChain& chain,
                                                   const alvc::cluster::VirtualCluster* vc) const {
  for (std::size_t i = 0; i < chain.placement.hosts.size(); ++i) {
    if (!chain.instances[i].valid()) continue;  // already terminated: expected
    if (!host_usable(chain.placement.hosts[i])) return true;
    if (vc != nullptr && !host_in_slice(chain.placement.hosts[i], *vc)) return true;
  }
  if (chain.route.vertices.empty()) return false;  // fully parked
  if (vc == nullptr || vc->layer.tors.empty()) return true;
  return route_broken(chain, *vc);
}

void NetworkOrchestrator::park_chain(ProvisionedChain& chain) {
  const NfcId id = chain.record.id;
  controller_.remove_chain(id);
  if (!chain.route.vertices.empty() && chain.reserved_gbps > 0) {
    bandwidth_.release_walk(chain.route.vertices, chain.reserved_gbps);
  }
  chain.reserved_gbps = 0;
  chain.route = ChainRoute{};
  chain.flow_rules = 0;
  for (std::size_t i = 0; i < chain.instances.size(); ++i) {
    if (!chain.instances[i].valid()) continue;
    if (host_usable(chain.placement.hosts[i])) continue;
    ALVC_IGNORE_STATUS(cloud_.terminate(chain.instances[i]),
                       "parking: the host is dead, the instance is gone either way");
    chain.instances[i] = alvc::util::VnfInstanceId::invalid();
  }
}

double NetworkOrchestrator::fit_chain(ProvisionedChain& chain) {
  ALVC_SPAN(span, "orchestrator.fit_chain");
  const NfcId id = chain.record.id;
  const VirtualCluster* vc = clusters_->find(chain.cluster);
  if (vc == nullptr || vc->layer.tors.empty()) return 0;
  const auto& topo = clusters_->topology();

  PlacementContext context{
      .topo = &topo, .cluster = vc, .catalog = catalog_, .pool = &cloud_.pool()};
  const auto optical = context.slice_optical_hosts();
  const auto electronic = context.slice_electronic_hosts();
  for (std::size_t i = 0; i < chain.placement.hosts.size(); ++i) {
    const bool bad = !chain.instances[i].valid() || !host_usable(chain.placement.hosts[i]) ||
                     !host_in_slice(chain.placement.hosts[i], *vc);
    if (!bad) continue;
    const auto& desc = catalog_->descriptor(chain.record.spec.functions[i]);
    // Prefer staying optical, fall back to a server.
    std::optional<HostRef> target;
    if (!desc.electronic_only) {
      for (alvc::util::OpsId candidate : optical) {
        if (cloud_.pool().fits(HostRef{candidate}, desc.demand)) {
          target = HostRef{candidate};
          break;
        }
      }
    }
    if (!target) {
      for (alvc::util::ServerId candidate : electronic) {
        if (cloud_.pool().fits(HostRef{candidate}, desc.demand)) {
          target = HostRef{candidate};
          break;
        }
      }
    }
    if (!target) return 0;
    if (chain.instances[i].valid()) {
      ALVC_IGNORE_STATUS(cloud_.terminate(chain.instances[i]),
                         "relocation: the stranded instance is replaced either way");
      chain.instances[i] = alvc::util::VnfInstanceId::invalid();
    }
    auto fresh = cloud_.deploy(chain.record.spec.functions[i], *target);
    if (!fresh) return 0;
    chain.instances[i] = *fresh;
    chain.placement.hosts[i] = *target;
    log_.append(sdn::ControlEventType::kVnfRelocated, id.value(),
                "failure relocation of function " + std::to_string(i));
    ++stats_.vnfs_relocated;
  }
  finalize_placement(chain.placement);

  auto route = route_linear(*vc, chain.placement.hosts, chain.record.spec.priority);
  if (!route) return 0;
  for (const auto& leg : route->legs) {
    if (!controller_.install_path(id, leg).is_ok()) {
      controller_.remove_chain(id);
      return 0;
    }
  }
  // Largest feasible fraction of the spec's demand: full service first,
  // then the degraded-mode ladder.
  constexpr double kFractions[] = {1.0, 0.5, 0.25, 0.125};
  for (double fraction : kFractions) {
    const double gbps = chain.record.spec.bandwidth_gbps * fraction;
    if (bandwidth_.reserve_walk(route->vertices, gbps).is_ok()) {
      chain.route = std::move(*route);
      chain.reserved_gbps = gbps;
      chain.flow_rules = controller_.chain_rule_count(id);
      // Keep the slice record's bandwidth (and its epoch) in step with the
      // rung actually achieved.
      ALVC_IGNORE_STATUS(slices_.set_bandwidth(id, gbps),
                         "a parked chain can outlive its slice record only transiently; "
                         "the reservation above is the source of truth");
      return fraction;
    }
  }
  controller_.remove_chain(id);
  return 0;
}

void NetworkOrchestrator::mark_degraded(ProvisionedChain& chain, double fraction,
                                        const std::string& reason) {
  const bool entered = !chain.degraded;
  chain.degraded = true;
  chain.degraded_reason = reason;
  if (entered) {
    ++stats_.chains_degraded;
    ALVC_COUNT("orchestrator.chains.degraded_transitions");
  }
  // Which rung of the degraded-mode ladder the chain landed on, overall and
  // per QoS class (macro names are literals, hence the branch).
  ALVC_OBSERVE("orchestrator.degraded.fraction", 0.0, 1.0, 8, fraction);
  if (chain.record.spec.priority == alvc::nfv::PriorityClass::kHipri) {
    ALVC_OBSERVE("orchestrator.degraded.fraction.hipri", 0.0, 1.0, 8, fraction);
    if (entered) ALVC_COUNT("orchestrator.chains.degraded_transitions.hipri");
  } else {
    ALVC_OBSERVE("orchestrator.degraded.fraction.lopri", 0.0, 1.0, 8, fraction);
    if (entered) ALVC_COUNT("orchestrator.chains.degraded_transitions.lopri");
  }
  log_.append(sdn::ControlEventType::kChainDegraded, chain.record.id.value(),
              reason + " (serving " + std::to_string(static_cast<int>(fraction * 100)) +
                  "% of demanded bandwidth)");
  enqueue_retry(chain.record.id);
}

NetworkOrchestrator::SweepVerdict NetworkOrchestrator::classify_chain(NfcId id) const {
  const auto it = chains_.find(id);
  if (it == chains_.end()) return SweepVerdict::kNone;
  const ProvisionedChain& chain = it->second;
  const VirtualCluster* vc = clusters_->find(chain.cluster);
  if (chain.degraded) {
    // The retry queue owns restoration, but a later failure can still hit
    // the degraded chain's surviving residue — re-park and re-fit whatever
    // best-effort slice remains so nothing stays on dead hardware.
    return degraded_chain_disturbed(chain, vc) ? SweepVerdict::kRefitDegraded
                                               : SweepVerdict::kNone;
  }
  return chain_needs_refit(chain, vc) ? SweepVerdict::kRefit : SweepVerdict::kNone;
}

void NetworkOrchestrator::apply_sweep_verdict(NfcId id, SweepVerdict verdict,
                                              std::size_t& repaired) {
  if (verdict == SweepVerdict::kNone) return;
  const auto it = chains_.find(id);
  if (it == chains_.end()) return;
  ProvisionedChain& chain = it->second;
  if (verdict == SweepVerdict::kRefitDegraded) {
    park_chain(chain);
    ALVC_IGNORE_STATUS(fit_chain(chain),
                       "best-effort re-fit of a disturbed degraded chain; the achieved "
                       "fraction is recorded in the chain state, retries own restoration");
    return;
  }
  park_chain(chain);
  const double fraction = fit_chain(chain);
  if (fraction >= 1.0) {
    ++repaired;
    log_.append(sdn::ControlEventType::kChainRepaired, id.value());
    ++stats_.chains_repaired;
    ALVC_COUNT("orchestrator.chains.repaired");
  } else {
    mark_degraded(chain, fraction, "full-bandwidth refit infeasible after failure");
  }
}

std::size_t NetworkOrchestrator::sweep_chains(const std::vector<alvc::util::ClusterId>* scope) {
  ALVC_SPAN(span, "orchestrator.sweep_chains");
  std::size_t repaired = 0;
  if (agent_ != nullptr) {
    // Two-phase pass: classify every chain shard-parallel (pure reads — see
    // SweepVerdict's comment), then apply verdicts serially in ascending id
    // order. Applying chain A never changes what classify would decide for
    // chain B, so this equals the serial classify-as-you-go loop below.
    // With a scope, only the blast radius is classified (see the header);
    // chains elsewhere would classify kNone, which apply ignores anyway.
    const ControlAgent::Classifier classify = [this](NfcId id, ScanItem& item) {
      const SweepVerdict verdict = classify_chain(id);
      if (verdict == SweepVerdict::kNone) return false;
      item.verdict = static_cast<int>(verdict);
      return true;
    };
    const auto findings =
        scope != nullptr ? agent_->scan_scoped(*scope, classify) : agent_->scan(classify);
    for (const ScanItem& finding : findings) {
      apply_sweep_verdict(finding.id, static_cast<SweepVerdict>(finding.verdict), repaired);
    }
    return repaired;
  }
  for (NfcId id : sorted_chain_ids()) {
    apply_sweep_verdict(id, classify_chain(id), repaired);
  }
  return repaired;
}

std::vector<alvc::util::ClusterId> NetworkOrchestrator::server_blast_radius(
    alvc::util::ServerId server) const {
  // VNF placements are not limited to the clusters owning the box's VMs:
  // fit_chain places anywhere in the chain's slice, and a server is in a
  // slice iff the AL contains its primary ToR. So the clusters containing
  // that ToR are exactly the ones whose chains can be disturbed.
  return clusters_->clusters_containing_tor(clusters_->topology().server(server).tor);
}

std::size_t NetworkOrchestrator::drain_retry_queue() {
  ALVC_SPAN(span, "orchestrator.drain_retry_queue");
  ++recovery_epoch_;
  // Sharded mode drains every shard's segment into one id-sorted batch
  // (ids are unique across shards, so the merged order matches the serial
  // queue's sort); entries the pass keeps go back to their owning shards.
  std::vector<RetryEntry> entries;
  if (agent_ != nullptr) {
    entries = agent_->drain_retries();
  } else {
    std::sort(retry_queue_.begin(), retry_queue_.end(),
              [](const RetryEntry& a, const RetryEntry& b) { return a.id < b.id; });
    entries = std::move(retry_queue_);
    retry_queue_.clear();
  }
  constexpr std::size_t kMaxAttempts = 16;
  std::size_t restored = 0;
  std::vector<RetryEntry> keep;
  for (RetryEntry entry : entries) {
    const auto it = chains_.find(entry.id);
    if (it == chains_.end()) continue;  // torn down meanwhile
    ProvisionedChain& chain = it->second;
    if (!chain.degraded) continue;  // already healthy again
    if (entry.not_before > recovery_epoch_) {
      keep.push_back(entry);  // still backing off
      continue;
    }
    const double before_gbps = chain.reserved_gbps;
    park_chain(chain);  // releases any reduced-bandwidth partial state
    const double fraction = fit_chain(chain);
    if (fraction >= 1.0) {
      chain.degraded = false;
      chain.degraded_reason.clear();
      ++restored;
      ++stats_.chains_restored;
      ALVC_COUNT("orchestrator.chains.restored");
      log_.append(sdn::ControlEventType::kChainRestored, entry.id.value());
      continue;
    }
    if (allocator_.policy() != AllocationPolicy::kStrictLadder &&
        chain.record.spec.bandwidth_gbps * fraction > before_gbps + 1e-9) {
      // The retry climbed the ladder without reaching full demand: it
      // re-enters the queue at the tier it just won, eligible at the next
      // recovery event, and the improving attempt does not count against
      // the retry budget.
      entry.not_before = recovery_epoch_ + 1;
      keep.push_back(entry);
      continue;
    }
    ++entry.attempts;
    if (entry.attempts >= kMaxAttempts) continue;  // bounded: stays degraded, no more retries
    // Deterministic exponential backoff, clocked in recovery events.
    entry.not_before =
        recovery_epoch_ + (1ULL << std::min<std::size_t>(entry.attempts, 6));
    keep.push_back(entry);
  }
  if (agent_ != nullptr) {
    for (const RetryEntry& entry : keep) {
      // Kept entries passed the liveness check above, so the chain exists.
      agent_->enqueue_retry(entry, chains_.at(entry.id).cluster);
    }
  } else {
    retry_queue_ = std::move(keep);
  }
  ALVC_GAUGE_SET("orchestrator.retry_queue.depth", static_cast<double>(retry_queue_size()));
  return restored;
}

void NetworkOrchestrator::enqueue_retry(NfcId id) {
  if (agent_ != nullptr) {
    // Per-shard dedupe equals the serial queue's global dedupe: a chain's
    // cluster (hence shard) never changes while it lives.
    if (!agent_->enqueue_retry(RetryEntry{.id = id}, chains_.at(id).cluster)) return;
    ALVC_GAUGE_SET("orchestrator.retry_queue.depth", static_cast<double>(retry_queue_size()));
    return;
  }
  for (const RetryEntry& entry : retry_queue_) {
    if (entry.id == id) return;
  }
  retry_queue_.push_back(RetryEntry{.id = id});
  ALVC_GAUGE_SET("orchestrator.retry_queue.depth", static_cast<double>(retry_queue_.size()));
}

std::optional<std::vector<std::uint64_t>> NetworkOrchestrator::chain_link_keys(NfcId id) const {
  const auto it = chains_.find(id);
  if (it == chains_.end()) return std::nullopt;
  const ProvisionedChain& chain = it->second;
  if (chain.route.vertices.empty()) return std::nullopt;
  std::vector<std::uint64_t> links;
  for (std::size_t i = 0; i + 1 < chain.route.vertices.size(); ++i) {
    const auto [lo, hi] = std::minmax(chain.route.vertices[i], chain.route.vertices[i + 1]);
    if (lo == hi) continue;
    links.push_back((static_cast<std::uint64_t>(lo) << 32) |
                    static_cast<std::uint64_t>(hi & 0xffffffffULL));
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

std::size_t NetworkOrchestrator::rebalance_bandwidth() {
  if (allocator_.policy() == AllocationPolicy::kStrictLadder) return 0;
  ALVC_SPAN(span, "orchestrator.rebalance_bandwidth");
  constexpr double kEps = 1e-9;
  const auto& topo = clusters_->topology();
  const double factor = allocator_.tor_budget_factor();

  // Phase 1 (read-only): each routed chain's distinct route links, sorted —
  // shard-parallel when sharded, one serial walk otherwise, ascending id
  // either way. Parked chains have no route and stay with the retry queue.
  std::vector<ScanItem> routed;
  if (agent_ != nullptr) {
    routed = agent_->scan([this](NfcId id, ScanItem& item) {
      auto links = chain_link_keys(id);
      if (!links) return false;
      item.links = std::move(*links);
      return true;
    });
  } else {
    for (NfcId id : sorted_chain_ids()) {
      auto links = chain_link_keys(id);
      if (!links) continue;
      ScanItem item;
      item.id = id;
      item.links = std::move(*links);
      routed.push_back(std::move(item));
    }
  }

  // Phase 2 (serial): index resources in encounter order and let the
  // allocator plan. Each distinct route link is a resource (coeff 1.0,
  // matching the ledger's once-per-distinct-link accounting), plus — when
  // the ToR budget is enabled — one aggregate uplink budget per ToR the
  // route crosses, with coeff = the number of incident route links (a
  // through-ToR hop pays ingress and egress).
  std::vector<NfcId> ids;
  std::vector<AllocChain> alloc;
  std::vector<AllocResource> resources;
  std::unordered_map<std::uint64_t, std::uint32_t> link_index;
  std::unordered_map<std::size_t, std::uint32_t> tor_budget_index;  // ToR vertex -> resource
  for (const ScanItem& snapshot : routed) {
    const NfcId id = snapshot.id;
    const ProvisionedChain& chain = chains_.at(id);
    AllocChain ac;
    ac.id = id;
    ac.cls = chain.record.spec.priority;
    ac.demand_gbps = chain.record.spec.bandwidth_gbps;
    std::vector<std::pair<std::uint32_t, double>> tor_uses;
    for (std::uint64_t k : snapshot.links) {
      const auto u = static_cast<std::size_t>(k >> 32);
      const auto v = static_cast<std::size_t>(k & 0xffffffffULL);
      const auto [lit, fresh] =
          link_index.try_emplace(k, static_cast<std::uint32_t>(resources.size()));
      if (fresh) resources.push_back(AllocResource{bandwidth_.capacity_gbps(u, v)});
      ac.uses.emplace_back(lit->second, 1.0);
      if (factor <= 0) continue;
      for (const std::size_t end : {u, v}) {
        if (topo.is_ops_vertex(end)) continue;
        const auto [tit, tor_fresh] =
            tor_budget_index.try_emplace(end, static_cast<std::uint32_t>(resources.size()));
        if (tor_fresh) {
          resources.push_back(
              AllocResource{factor * topo.tor(topo.vertex_to_tor(end)).port_bandwidth_gbps});
        }
        const auto prior = std::find_if(tor_uses.begin(), tor_uses.end(),
                                        [&](const auto& use) { return use.first == tit->second; });
        if (prior == tor_uses.end()) {
          tor_uses.emplace_back(tit->second, 1.0);
        } else {
          prior->second += 1.0;
        }
      }
    }
    std::sort(tor_uses.begin(), tor_uses.end());
    ac.uses.insert(ac.uses.end(), tor_uses.begin(), tor_uses.end());
    ids.push_back(id);
    alloc.push_back(std::move(ac));
  }
  if (alloc.empty()) return 0;

  const AllocationPlan plan = allocator_.plan(alloc, resources);
  ALVC_OBSERVE("orchestrator.alloc.waterfill.iterations", 0, 64, 16,
               static_cast<double>(plan.fill_iterations));
  if (plan.lopri_demotions > 0) {
    ALVC_COUNT_N("orchestrator.alloc.lopri_demotions", plan.lopri_demotions);
  }

  std::size_t changed = 0;
  // Shrink pass first: every release lands before any grow reserves, so
  // the grow pass cannot be starved by capacity the plan already moved.
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    ProvisionedChain& chain = chains_.at(ids[i]);
    const double target = plan.target_gbps[i];
    if (target + kEps >= chain.reserved_gbps) continue;
    ++changed;
    ++stats_.alloc_downgrades;
    if (chain.record.spec.priority == alvc::nfv::PriorityClass::kHipri) {
      ALVC_COUNT("orchestrator.alloc.downgrades.hipri");
    } else {
      ALVC_COUNT("orchestrator.alloc.downgrades.lopri");
    }
    if (target <= kEps) {
      park_chain(chain);  // rules out, reservation released, route cleared
      mark_degraded(chain, 0.0, "bandwidth shed by the allocator under overload");
      continue;
    }
    bandwidth_.release_walk(chain.route.vertices, chain.reserved_gbps - target);
    chain.reserved_gbps = target;
    ALVC_IGNORE_STATUS(slices_.set_bandwidth(ids[i], target),
                       "the reservation is the source of truth; the slice record follows");
    mark_degraded(chain, target / chain.record.spec.bandwidth_gbps,
                  "bandwidth shed by the allocator under overload");
  }
  // Grow pass, ids ascending (the plan's own climb order).
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    ProvisionedChain& chain = chains_.at(ids[i]);
    const double target = plan.target_gbps[i];
    if (chain.route.vertices.empty()) continue;  // shed to zero above
    if (target <= chain.reserved_gbps + kEps) continue;
    if (!bandwidth_.reserve_walk(chain.route.vertices, target - chain.reserved_gbps).is_ok()) {
      continue;  // defensive: the plan respects raw capacities, but never force it
    }
    chain.reserved_gbps = target;
    ALVC_IGNORE_STATUS(slices_.set_bandwidth(ids[i], target),
                       "the reservation is the source of truth; the slice record follows");
    ++changed;
    ++stats_.alloc_restores;
    if (chain.record.spec.priority == alvc::nfv::PriorityClass::kHipri) {
      ALVC_COUNT("orchestrator.alloc.restores.hipri");
    } else {
      ALVC_COUNT("orchestrator.alloc.restores.lopri");
    }
    const bool instances_ok =
        std::all_of(chain.instances.begin(), chain.instances.end(),
                    [](alvc::util::VnfInstanceId inst) { return inst.valid(); });
    if (chain.degraded && instances_ok &&
        target + kEps >= chain.record.spec.bandwidth_gbps) {
      chain.degraded = false;
      chain.degraded_reason.clear();
      ++stats_.chains_restored;
      ALVC_COUNT("orchestrator.chains.restored");
      log_.append(sdn::ControlEventType::kChainRestored, ids[i].value(),
                  "allocator rebalance restored full bandwidth");
    }
  }
  if (changed > 0) {
    ++stats_.alloc_rebalances;
    ALVC_COUNT("orchestrator.alloc.rebalances");
  }
  return changed;
}

std::vector<NfcId> NetworkOrchestrator::sorted_chain_ids() const {
  std::vector<NfcId> ids;
  ids.reserve(chains_.size());
  for (const auto& [id, chain] : chains_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void NetworkOrchestrator::set_sharding(std::size_t shard_count, alvc::util::Executor* executor) {
  if (agent_ != nullptr) {
    // Fold the shards back first so a re-shard migrates pending retries.
    retry_queue_ = agent_->drain_retries();
    agent_.reset();
    route_cache_.clear();
  }
  if (shard_count == 0) return;
  agent_ = std::make_unique<ControlAgent>(clusters_->topology(), shard_count, executor);
  route_cache_.clear();  // per-shard caches own routing now; start them cold
  for (NfcId id : sorted_chain_ids()) {
    agent_->register_chain(id, chains_.at(id).cluster);
  }
  std::sort(retry_queue_.begin(), retry_queue_.end(),
            [](const RetryEntry& a, const RetryEntry& b) { return a.id < b.id; });
  for (const RetryEntry& entry : retry_queue_) {
    const auto it = chains_.find(entry.id);
    if (it == chains_.end()) continue;  // dead chain: the next drain would drop it anyway
    agent_->enqueue_retry(entry, it->second.cluster);
  }
  retry_queue_.clear();
}

std::vector<const RouteCache*> NetworkOrchestrator::route_caches() const {
  std::vector<const RouteCache*> out;
  if (agent_ == nullptr) {
    out.push_back(&route_cache_);
    return out;
  }
  out.reserve(agent_->shard_count());
  for (std::size_t s = 0; s < agent_->shard_count(); ++s) {
    out.push_back(&agent_->shard(s).cache());
  }
  return out;
}

RouteCacheStats NetworkOrchestrator::aggregate_route_cache_stats() const {
  RouteCacheStats total;
  for (const RouteCache* cache : route_caches()) {
    const RouteCacheStats& s = cache->stats();
    total.hits += s.hits;
    total.revalidations += s.revalidations;
    total.misses += s.misses;
    total.stale_evictions += s.stale_evictions;
    total.bypasses += s.bypasses;
    total.invalidations += s.invalidations;
  }
  return total;
}

std::size_t NetworkOrchestrator::retry_queue_size() const noexcept {
  return agent_ != nullptr ? agent_->retry_count() : retry_queue_.size();
}

std::size_t NetworkOrchestrator::degraded_chain_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, chain] : chains_) {
    if (chain.degraded) ++n;
  }
  return n;
}

Expected<std::size_t> NetworkOrchestrator::handle_ops_failure(alvc::util::OpsId ops) {
  ALVC_SPAN(span, "orchestrator.handle_ops_failure");
  const auto& topo = clusters_->topology();
  if (ops.index() >= topo.ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad OPS id"};
  }
  if (!topo.ops_usable(ops)) return std::size_t{0};  // duplicate report
  // Repair the AL first (marks the OPS failed in the topology as a side
  // effect, so every later decision sees the failure).
  log_.append(sdn::ControlEventType::kOpsFailed, ops.value());
  std::vector<alvc::util::ClusterId> touched;
  const auto repair = clusters_->handle_ops_failure(ops, &touched);
  if (repair.has_value()) log_.append(sdn::ControlEventType::kAlRepaired, ops.value());
  const std::size_t repaired = sweep_chains(agent_ != nullptr ? &touched : nullptr);
  rebalance_bandwidth();
  return repaired;
}

Expected<std::size_t> NetworkOrchestrator::handle_tor_failure(alvc::util::TorId tor) {
  ALVC_SPAN(span, "orchestrator.handle_tor_failure");
  const auto& topo = clusters_->topology();
  if (tor.index() >= topo.tor_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad ToR id"};
  }
  if (!topo.tor_usable(tor)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kTorFailed, tor.value());
  std::vector<alvc::util::ClusterId> touched;
  const auto repair = clusters_->handle_tor_failure(tor, repair_builder_, &touched);
  if (repair.has_value()) {
    log_.append(sdn::ControlEventType::kAlRepaired, tor.value(), "after ToR failure");
  }
  const std::size_t repaired = sweep_chains(agent_ != nullptr ? &touched : nullptr);
  rebalance_bandwidth();
  return repaired;
}

Expected<std::size_t> NetworkOrchestrator::handle_server_failure(alvc::util::ServerId server) {
  ALVC_SPAN(span, "orchestrator.handle_server_failure");
  const auto& topo = clusters_->topology();
  if (server.index() >= topo.server_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad server id"};
  }
  if (!topo.server_usable(server)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kServerFailed, server.value());
  ALVC_IGNORE_STATUS(clusters_->handle_server_failure(server),
                     "ids were validated above; sweep_chains handles the fallout either way");
  // Server events change no AL; the blast radius is the clusters whose
  // slice contains the box (see server_blast_radius).
  const std::vector<alvc::util::ClusterId> touched = server_blast_radius(server);
  const std::size_t repaired = sweep_chains(agent_ != nullptr ? &touched : nullptr);
  rebalance_bandwidth();
  return repaired;
}

Expected<std::size_t> NetworkOrchestrator::handle_link_failure(alvc::util::TorId tor,
                                                               alvc::util::OpsId ops) {
  ALVC_SPAN(span, "orchestrator.handle_link_failure");
  const auto& topo = clusters_->topology();
  if (tor.index() >= topo.tor_count() || ops.index() >= topo.ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad link endpoint id"};
  }
  const auto& uplinks = topo.tor(tor).uplinks;
  if (std::find(uplinks.begin(), uplinks.end(), ops) == uplinks.end()) {
    return Error{ErrorCode::kNotFound, "no such ToR-OPS link"};
  }
  if (topo.link_failed(tor, ops)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kLinkFailed, tor.value(),
              "to OPS " + std::to_string(ops.value()));
  std::vector<alvc::util::ClusterId> touched;
  ALVC_IGNORE_STATUS(clusters_->handle_link_failure(tor, ops, &touched),
                     "an infeasible AL repair leaves the cluster degraded; sweep_chains "
                     "degrades the affected chains rather than aborting the handler");
  const std::size_t repaired = sweep_chains(agent_ != nullptr ? &touched : nullptr);
  rebalance_bandwidth();
  return repaired;
}

Expected<std::size_t> NetworkOrchestrator::handle_ops_recovery(alvc::util::OpsId ops) {
  ALVC_SPAN(span, "orchestrator.handle_ops_recovery");
  const auto& topo = clusters_->topology();
  if (ops.index() >= topo.ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad OPS id"};
  }
  if (topo.ops_usable(ops)) return std::size_t{0};  // was not failed
  log_.append(sdn::ControlEventType::kOpsRecovered, ops.value());
  std::vector<alvc::util::ClusterId> touched;
  ALVC_IGNORE_STATUS(clusters_->handle_ops_recovery(ops, repair_builder_, &touched),
                     "a failed cluster rebuild leaves it degraded; recovery proceeds anyway");
  // Cluster rebuilds may have shifted slices under healthy chains; fix
  // those first so capacity is settled before degraded chains compete.
  // Outside the rebuilt (degraded) clusters a recovery only flips hardware
  // dead -> alive, which moves sweep verdicts toward kNone, so the rebuilt
  // clusters are the whole blast radius.
  ALVC_IGNORE_STATUS(sweep_chains(agent_ != nullptr ? &touched : nullptr),
                     "repairs of healthy chains are logged per chain; this call returns "
                     "only the count and the caller reports restorations instead");
  const std::size_t restored = drain_retry_queue();
  rebalance_bandwidth();
  return restored;
}

Expected<std::size_t> NetworkOrchestrator::handle_tor_recovery(alvc::util::TorId tor) {
  ALVC_SPAN(span, "orchestrator.handle_tor_recovery");
  const auto& topo = clusters_->topology();
  if (tor.index() >= topo.tor_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad ToR id"};
  }
  if (topo.tor_usable(tor)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kTorRecovered, tor.value());
  std::vector<alvc::util::ClusterId> touched;
  ALVC_IGNORE_STATUS(clusters_->handle_tor_recovery(tor, repair_builder_, &touched),
                     "a failed cluster rebuild leaves it degraded; recovery proceeds anyway");
  ALVC_IGNORE_STATUS(sweep_chains(agent_ != nullptr ? &touched : nullptr),
                     "settle healthy chains first; restorations are returned");
  const std::size_t restored = drain_retry_queue();
  rebalance_bandwidth();
  return restored;
}

Expected<std::size_t> NetworkOrchestrator::handle_server_recovery(alvc::util::ServerId server) {
  ALVC_SPAN(span, "orchestrator.handle_server_recovery");
  const auto& topo = clusters_->topology();
  if (server.index() >= topo.server_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad server id"};
  }
  if (topo.server_usable(server)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kServerRecovered, server.value());
  ALVC_IGNORE_STATUS(clusters_->handle_server_recovery(server),
                     "ids were validated above; a server recovery cannot fail an AL");
  const std::vector<alvc::util::ClusterId> touched = server_blast_radius(server);
  ALVC_IGNORE_STATUS(sweep_chains(agent_ != nullptr ? &touched : nullptr),
                     "settle healthy chains first; restorations are returned");
  const std::size_t restored = drain_retry_queue();
  rebalance_bandwidth();
  return restored;
}

Expected<std::size_t> NetworkOrchestrator::handle_link_recovery(alvc::util::TorId tor,
                                                                alvc::util::OpsId ops) {
  ALVC_SPAN(span, "orchestrator.handle_link_recovery");
  const auto& topo = clusters_->topology();
  if (tor.index() >= topo.tor_count() || ops.index() >= topo.ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad link endpoint id"};
  }
  if (!topo.link_failed(tor, ops)) return std::size_t{0};
  log_.append(sdn::ControlEventType::kLinkRecovered, tor.value(),
              "to OPS " + std::to_string(ops.value()));
  std::vector<alvc::util::ClusterId> touched;
  ALVC_IGNORE_STATUS(clusters_->handle_link_recovery(tor, ops, repair_builder_, &touched),
                     "a failed cluster rebuild leaves it degraded; recovery proceeds anyway");
  ALVC_IGNORE_STATUS(sweep_chains(agent_ != nullptr ? &touched : nullptr),
                     "settle healthy chains first; restorations are returned");
  const std::size_t restored = drain_retry_queue();
  rebalance_bandwidth();
  return restored;
}

const ProvisionedChain* NetworkOrchestrator::chain(NfcId id) const {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : &it->second;
}

std::vector<const ProvisionedChain*> NetworkOrchestrator::chains() const {
  std::vector<const ProvisionedChain*> out;
  out.reserve(chains_.size());
  for (const auto& [id, chain] : chains_) out.push_back(&chain);
  std::sort(out.begin(), out.end(), [](const ProvisionedChain* a, const ProvisionedChain* b) {
    return a->record.id < b->record.id;
  });
  return out;
}

std::vector<std::string> NetworkOrchestrator::check_isolation() const {
  std::vector<std::string> violations;
  const auto& topo = clusters_->topology();
  for (const NfcId id : sorted_chain_ids()) {
    const ProvisionedChain& chain = chains_.at(id);
    const VirtualCluster* vc = clusters_->find(chain.cluster);
    if (vc == nullptr) {
      violations.push_back("chain " + std::to_string(id.value()) + " references a dead cluster");
      continue;
    }
    std::unordered_set<std::size_t> slice_vertices;
    for (auto t : vc->layer.tors) slice_vertices.insert(topo.tor_vertex(t));
    for (auto o : vc->layer.opss) slice_vertices.insert(topo.ops_vertex(o));
    for (std::size_t v : chain.route.vertices) {
      if (!slice_vertices.contains(v)) {
        violations.push_back("chain " + std::to_string(id.value()) + " rides switch vertex " +
                             std::to_string(v) + " outside its slice");
      }
    }
  }
  return violations;
}

}  // namespace alvc::orchestrator
