#include "orchestrator/orchestrator.h"

#include <algorithm>
#include <unordered_set>

namespace alvc::orchestrator {

using alvc::cluster::VirtualCluster;
using alvc::nfv::HostRef;
using alvc::util::ClusterId;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Expected;
using alvc::util::ServiceId;
using alvc::util::Status;

NetworkOrchestrator::NetworkOrchestrator(alvc::cluster::ClusterManager& clusters,
                                         const alvc::nfv::VnfCatalog& catalog)
    : clusters_(&clusters),
      catalog_(&catalog),
      cloud_(catalog, clusters.topology()),
      controller_(clusters.topology()),
      admission_(clusters.topology(), catalog),
      bandwidth_(clusters.topology()),
      router_(clusters.topology()) {}

const VirtualCluster* NetworkOrchestrator::cluster_for_service(ServiceId service) const {
  for (const VirtualCluster* vc : clusters_->clusters()) {
    if (vc->service == service) return vc;
  }
  return nullptr;
}

std::vector<Status> NetworkOrchestrator::preadmit_chains(
    std::span<const alvc::nfv::NfcSpec> specs, alvc::util::Executor* executor) {
  struct Screened {
    const VirtualCluster* vc = nullptr;
    AdmissionDecision decision;
  };
  std::vector<Screened> screened(specs.size());
  // Resolve clusters up front (reads clusters_, not thread-safe to mix with
  // mutation anyway; the checks themselves are pure reads).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    screened[i].vc = cluster_for_service(specs[i].service);
  }
  const auto check_one = [&](std::size_t i) {
    if (screened[i].vc == nullptr) {
      screened[i].decision.status =
          Error{ErrorCode::kNotFound,
                "no cluster serves service " + std::to_string(specs[i].service.value())};
      return;
    }
    screened[i].decision = admission_.check(specs[i], *screened[i].vc, cloud_.pool());
  };
  if (executor != nullptr) {
    auto tasks = executor->new_task_group();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      tasks->submit([&, i] { check_one(i); });
    }
    tasks->wait_all();
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) check_one(i);
  }
  // Record counters serially, in input order, so stats match a serial run.
  std::vector<Status> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (screened[i].vc != nullptr) admission_.record(screened[i].decision);
    results.push_back(screened[i].decision.status);
  }
  return results;
}

Expected<NfcId> NetworkOrchestrator::provision_chain(const alvc::nfv::NfcSpec& spec,
                                                     const PlacementStrategy& placement) {
  const VirtualCluster* vc = cluster_for_service(spec.service);
  if (vc == nullptr) {
    ++stats_.provision_failures;
    return Error{ErrorCode::kNotFound,
                 "no cluster serves service " + std::to_string(spec.service.value())};
  }
  if (vc->layer.tors.empty()) {
    ++stats_.provision_failures;
    return Error{ErrorCode::kInfeasible, "cluster has an empty abstraction layer"};
  }
  if (auto status = admission_.admit(spec, *vc, cloud_.pool()); !status.is_ok()) {
    ++stats_.provision_failures;
    return status.error();
  }
  const NfcId id{next_id_++};
  auto slice = slices_.allocate(vc->id, id, spec.bandwidth_gbps);
  if (!slice) {
    ++stats_.provision_failures;
    return slice.error();
  }

  PlacementContext context{.topo = &clusters_->topology(),
                           .cluster = vc,
                           .catalog = catalog_,
                           .pool = &cloud_.pool()};
  auto placed = placement.place(spec, context);
  if (!placed) {
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return placed.error();
  }
  // place() reserved capacity directly in the pool; release those raw
  // reservations and re-reserve through the cloud manager so lifecycle and
  // capacity stay coupled.
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    cloud_.pool().release(placed->hosts[i],
                          catalog_->descriptor(spec.functions[i]).demand);
  }
  std::vector<alvc::nfv::VnfInstanceId> instances;
  bool deploy_failed = false;
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    auto inst = cloud_.deploy(spec.functions[i], placed->hosts[i]);
    if (!inst) {
      deploy_failed = true;
      break;
    }
    instances.push_back(*inst);
  }
  if (deploy_failed) {
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return Error{ErrorCode::kInternal, "deployment failed after successful placement"};
  }

  // Route ingress ToR -> hosts -> egress ToR inside the slice. Default
  // anchors: the cluster's first and last ToRs.
  const alvc::util::TorId ingress = vc->layer.tors.front();
  const alvc::util::TorId egress = vc->layer.tors.back();
  auto route = load_balanced_routing_
                   ? router_.route_balanced(*vc, ingress, egress, placed->hosts, bandwidth_,
                                            routing_k_)
                   : router_.route(*vc, ingress, egress, placed->hosts);
  if (!route) {
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return route.error();
  }
  std::size_t rules = 0;
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) {
      controller_.remove_chain(id);
      for (auto inst : instances) (void)cloud_.terminate(inst);
      (void)slices_.release(id);
      ++stats_.provision_failures;
      return status.error();
    }
  }
  if (auto status = bandwidth_.reserve_walk(route->vertices, spec.bandwidth_gbps);
      !status.is_ok()) {
    controller_.remove_chain(id);
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return status.error();
  }
  rules = controller_.chain_rule_count(id);

  ProvisionedChain chain{.record = alvc::nfv::NfcRecord{.id = id, .spec = spec},
                         .cluster = vc->id,
                         .slice = *slice,
                         .instances = std::move(instances),
                         .placement = std::move(*placed),
                         .route = std::move(*route),
                         .flow_rules = rules};
  chains_.emplace(id, std::move(chain));
  log_.append(sdn::ControlEventType::kSliceAllocated, slice->value());
  log_.append(sdn::ControlEventType::kChainProvisioned, id.value(), spec.name);
  ++stats_.chains_provisioned;
  return id;
}

Expected<NfcId> NetworkOrchestrator::provision_forwarding_graph(
    const alvc::nfv::GraphNfcSpec& gspec, const PlacementStrategy& placement) {
  if (auto status = gspec.graph.validate(); !status.is_ok()) {
    ++stats_.provision_failures;
    return status.error();
  }
  const alvc::nfv::NfcSpec spec = gspec.to_linear_spec();
  const VirtualCluster* vc = cluster_for_service(spec.service);
  if (vc == nullptr) {
    ++stats_.provision_failures;
    return Error{ErrorCode::kNotFound,
                 "no cluster serves service " + std::to_string(spec.service.value())};
  }
  if (vc->layer.tors.empty()) {
    ++stats_.provision_failures;
    return Error{ErrorCode::kInfeasible, "cluster has an empty abstraction layer"};
  }
  if (auto status = admission_.admit(spec, *vc, cloud_.pool()); !status.is_ok()) {
    ++stats_.provision_failures;
    return status.error();
  }
  const NfcId id{next_id_++};
  auto slice = slices_.allocate(vc->id, id, spec.bandwidth_gbps);
  if (!slice) {
    ++stats_.provision_failures;
    return slice.error();
  }

  PlacementContext context{.topo = &clusters_->topology(),
                           .cluster = vc,
                           .catalog = catalog_,
                           .pool = &cloud_.pool()};
  auto placed = placement.place(spec, context);
  if (!placed) {
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return placed.error();
  }
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    cloud_.pool().release(placed->hosts[i], catalog_->descriptor(spec.functions[i]).demand);
  }
  std::vector<alvc::nfv::VnfInstanceId> instances;
  bool deploy_failed = false;
  for (std::size_t i = 0; i < placed->hosts.size(); ++i) {
    auto inst = cloud_.deploy(spec.functions[i], placed->hosts[i]);
    if (!inst) {
      deploy_failed = true;
      break;
    }
    instances.push_back(*inst);
  }
  if (deploy_failed) {
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return Error{ErrorCode::kInternal, "deployment failed after successful placement"};
  }

  // Map topological placement order back to node indices for routing.
  const auto order = gspec.graph.topological_order();
  std::vector<HostRef> node_hosts(order.size(), HostRef{alvc::util::ServerId{0}});
  for (std::size_t i = 0; i < order.size(); ++i) node_hosts[order[i]] = placed->hosts[i];

  const alvc::util::TorId ingress = vc->layer.tors.front();
  const alvc::util::TorId egress = vc->layer.tors.back();
  auto route = router_.route_graph(*vc, ingress, egress, gspec.graph, node_hosts);
  if (!route) {
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return route.error();
  }
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) {
      controller_.remove_chain(id);
      for (auto inst : instances) (void)cloud_.terminate(inst);
      (void)slices_.release(id);
      ++stats_.provision_failures;
      return status.error();
    }
  }
  if (auto status = bandwidth_.reserve_walk(route->vertices, spec.bandwidth_gbps);
      !status.is_ok()) {
    controller_.remove_chain(id);
    for (auto inst : instances) (void)cloud_.terminate(inst);
    (void)slices_.release(id);
    ++stats_.provision_failures;
    return status.error();
  }
  // The DAG's conversion count is authoritative for this chain.
  placed->conversions = route->conversions;

  ProvisionedChain chain{.record = alvc::nfv::NfcRecord{.id = id, .spec = spec},
                         .cluster = vc->id,
                         .slice = *slice,
                         .instances = std::move(instances),
                         .placement = std::move(*placed),
                         .route = std::move(*route),
                         .flow_rules = controller_.chain_rule_count(id),
                         .graph = gspec.graph,
                         .forwarding_order = order};
  chains_.emplace(id, std::move(chain));
  log_.append(sdn::ControlEventType::kSliceAllocated, slice->value());
  log_.append(sdn::ControlEventType::kChainProvisioned, id.value(), spec.name);
  ++stats_.chains_provisioned;
  return id;
}

Status NetworkOrchestrator::teardown_chain(NfcId id) {
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  controller_.remove_chain(id);
  for (auto inst : it->second.instances) (void)cloud_.terminate(inst);
  bandwidth_.release_walk(it->second.route.vertices, it->second.record.spec.bandwidth_gbps);
  (void)slices_.release(id);
  chains_.erase(it);
  log_.append(sdn::ControlEventType::kSliceReleased, id.value());
  log_.append(sdn::ControlEventType::kChainTornDown, id.value());
  ++stats_.chains_torn_down;
  return Status::ok();
}

Status NetworkOrchestrator::scale_function(NfcId id, std::size_t function_index, double factor) {
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  if (function_index >= it->second.instances.size()) {
    return Error{ErrorCode::kInvalidArgument, "function index out of range"};
  }
  return cloud_.scale(it->second.instances[function_index], factor);
}

Status NetworkOrchestrator::migrate_function(NfcId id, std::size_t function_index,
                                             const HostRef& target) {
  const auto it = chains_.find(id);
  if (it == chains_.end()) {
    return Error{ErrorCode::kNotFound, "no chain " + std::to_string(id.value())};
  }
  ProvisionedChain& chain = it->second;
  if (function_index >= chain.placement.hosts.size()) {
    return Error{ErrorCode::kInvalidArgument, "function index out of range"};
  }
  const alvc::cluster::VirtualCluster* vc = clusters_->find(chain.cluster);
  if (vc == nullptr) return Error{ErrorCode::kInternal, "chain references a dead cluster"};

  // Target must be inside the slice.
  bool in_slice = false;
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&target)) {
    const auto& topo = clusters_->topology();
    in_slice = vc->layer.contains_ops(*ops) && topo.ops(*ops).optoelectronic &&
               topo.ops_usable(*ops);
  } else {
    const auto server = std::get<alvc::util::ServerId>(target);
    in_slice = vc->layer.contains_tor(clusters_->topology().server(server).tor);
  }
  if (!in_slice) {
    return Error{ErrorCode::kInvalidArgument, "migration target is outside the chain's slice"};
  }
  const auto& desc = catalog_->descriptor(chain.record.spec.functions[function_index]);
  if (desc.electronic_only && alvc::nfv::is_optical_host(target)) {
    return Error{ErrorCode::kInvalidArgument, "VNF is pinned to the electronic domain"};
  }
  if (chain.placement.hosts[function_index] == target) return Status::ok();
  if (!cloud_.pool().fits(target, desc.demand)) {
    return Error{ErrorCode::kCapacityExceeded, "target host cannot take the VNF"};
  }

  // Tentatively compute the new route before committing anything.
  auto hosts = chain.placement.hosts;
  hosts[function_index] = target;
  auto route = router_.route(*vc, vc->layer.tors.front(), vc->layer.tors.back(), hosts);
  if (!route) return route.error();
  // Move the bandwidth reservation (conservative: new walk reserved while
  // the old one is still held, so shared links must fit both briefly).
  const double gbps = chain.record.spec.bandwidth_gbps;
  if (auto status = bandwidth_.reserve_walk(route->vertices, gbps); !status.is_ok()) {
    return status.error();
  }
  bandwidth_.release_walk(chain.route.vertices, gbps);

  // Commit: move the instance, swap route and rules.
  (void)cloud_.terminate(chain.instances[function_index]);
  auto fresh = cloud_.deploy(chain.record.spec.functions[function_index], target);
  if (!fresh) return fresh.error();  // capacity raced away; old instance already gone
  chain.instances[function_index] = *fresh;
  chain.placement.hosts[function_index] = target;
  finalize_placement(chain.placement);
  controller_.remove_chain(id);
  for (const auto& leg : route->legs) {
    if (auto status = controller_.install_path(id, leg); !status.is_ok()) return status;
  }
  chain.route = std::move(*route);
  chain.flow_rules = controller_.chain_rule_count(id);
  log_.append(sdn::ControlEventType::kVnfRelocated, id.value(),
              "operator migration of function " + std::to_string(function_index));
  ++stats_.vnfs_relocated;
  return Status::ok();
}

std::vector<NfcId> NetworkOrchestrator::chains_using_ops(alvc::util::OpsId ops) const {
  const auto& topo = clusters_->topology();
  const std::size_t vertex = topo.ops_vertex(ops);
  std::vector<NfcId> affected;
  for (const auto& [id, chain] : chains_) {
    bool hit = std::find(chain.route.vertices.begin(), chain.route.vertices.end(), vertex) !=
               chain.route.vertices.end();
    if (!hit) {
      for (const HostRef& host : chain.placement.hosts) {
        if (const auto* o = std::get_if<alvc::util::OpsId>(&host); o != nullptr && *o == ops) {
          hit = true;
          break;
        }
      }
    }
    if (hit) affected.push_back(id);
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

Expected<std::size_t> NetworkOrchestrator::handle_ops_failure(alvc::util::OpsId ops) {
  const auto& topo = clusters_->topology();
  if (ops.index() >= topo.ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad OPS id"};
  }
  const auto affected = chains_using_ops(ops);
  // Repair the AL first (marks the OPS failed in the topology as a side
  // effect, so every later decision sees the failure).
  log_.append(sdn::ControlEventType::kOpsFailed, ops.value());
  const auto repair = clusters_->handle_ops_failure(ops);
  const bool al_repaired = repair.has_value();
  if (al_repaired) log_.append(sdn::ControlEventType::kAlRepaired, ops.value());

  std::size_t repaired = 0;
  for (NfcId id : affected) {
    auto it = chains_.find(id);
    if (it == chains_.end()) continue;
    ProvisionedChain& chain = it->second;
    const alvc::cluster::VirtualCluster* vc = clusters_->find(chain.cluster);
    bool ok = al_repaired && vc != nullptr && !vc->layer.tors.empty();

    // Relocate every instance stranded on the failed router.
    if (ok) {
      PlacementContext context{.topo = &topo,
                               .cluster = vc,
                               .catalog = catalog_,
                               .pool = &cloud_.pool()};
      const auto optical = context.slice_optical_hosts();
      const auto electronic = context.slice_electronic_hosts();
      for (std::size_t i = 0; i < chain.placement.hosts.size() && ok; ++i) {
        const auto* host_ops = std::get_if<alvc::util::OpsId>(&chain.placement.hosts[i]);
        if (host_ops == nullptr || *host_ops != ops) continue;
        const auto& desc = catalog_->descriptor(chain.record.spec.functions[i]);
        // Prefer staying optical, fall back to a server.
        std::optional<HostRef> target;
        for (alvc::util::OpsId candidate : optical) {
          if (cloud_.pool().fits(HostRef{candidate}, desc.demand)) {
            target = HostRef{candidate};
            break;
          }
        }
        if (!target) {
          for (alvc::util::ServerId candidate : electronic) {
            if (cloud_.pool().fits(HostRef{candidate}, desc.demand)) {
              target = HostRef{candidate};
              break;
            }
          }
        }
        if (!target) {
          ok = false;
          break;
        }
        (void)cloud_.terminate(chain.instances[i]);
        auto fresh = cloud_.deploy(chain.record.spec.functions[i], *target);
        if (!fresh) {
          ok = false;
          break;
        }
        chain.instances[i] = *fresh;
        chain.placement.hosts[i] = *target;
        log_.append(sdn::ControlEventType::kVnfRelocated, id.value(),
                    "failure relocation of function " + std::to_string(i));
        ++stats_.vnfs_relocated;
      }
    }
    // Re-route and re-program.
    if (ok) {
      finalize_placement(chain.placement);
      auto route = router_.route(*vc, vc->layer.tors.front(), vc->layer.tors.back(),
                                 chain.placement.hosts);
      ok = route.has_value();
      if (ok) {
        controller_.remove_chain(id);
        for (const auto& leg : route->legs) {
          if (!controller_.install_path(id, leg).is_ok()) {
            ok = false;
            break;
          }
        }
        if (ok) {
          const double gbps = chain.record.spec.bandwidth_gbps;
          bandwidth_.release_walk(chain.route.vertices, gbps);
          if (!bandwidth_.reserve_walk(route->vertices, gbps).is_ok()) {
            ok = false;  // headroom vanished; chain will be torn down
          } else {
            chain.route = std::move(*route);
            chain.flow_rules = controller_.chain_rule_count(id);
          }
        }
      }
    }
    if (ok) {
      ++repaired;
      log_.append(sdn::ControlEventType::kChainRepaired, id.value());
      ++stats_.chains_repaired;
    } else {
      (void)teardown_chain(id);
      log_.append(sdn::ControlEventType::kChainLost, id.value());
      ++stats_.chains_lost;
    }
  }
  return repaired;
}

const ProvisionedChain* NetworkOrchestrator::chain(NfcId id) const {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : &it->second;
}

std::vector<const ProvisionedChain*> NetworkOrchestrator::chains() const {
  std::vector<const ProvisionedChain*> out;
  out.reserve(chains_.size());
  for (const auto& [id, chain] : chains_) out.push_back(&chain);
  std::sort(out.begin(), out.end(), [](const ProvisionedChain* a, const ProvisionedChain* b) {
    return a->record.id < b->record.id;
  });
  return out;
}

std::vector<std::string> NetworkOrchestrator::check_isolation() const {
  std::vector<std::string> violations;
  const auto& topo = clusters_->topology();
  for (const auto& [id, chain] : chains_) {
    const VirtualCluster* vc = clusters_->find(chain.cluster);
    if (vc == nullptr) {
      violations.push_back("chain " + std::to_string(id.value()) + " references a dead cluster");
      continue;
    }
    std::unordered_set<std::size_t> slice_vertices;
    for (auto t : vc->layer.tors) slice_vertices.insert(topo.tor_vertex(t));
    for (auto o : vc->layer.opss) slice_vertices.insert(topo.ops_vertex(o));
    for (std::size_t v : chain.route.vertices) {
      if (!slice_vertices.contains(v)) {
        violations.push_back("chain " + std::to_string(id.value()) + " rides switch vertex " +
                             std::to_string(v) + " outside its slice");
      }
    }
  }
  return violations;
}

}  // namespace alvc::orchestrator
