// Epoch-versioned route cache for the orchestrator hot path.
//
// Every provision, refit, and recovery sweep re-runs a filtered BFS per
// chain leg over the slice subgraph, even though churn invalidates only a
// handful of elements between calls. RouteCache memoizes ChainRouter legs
// keyed by (slice, src, dst, bandwidth-tier) and invalidates by EPOCH, not
// by flush: DataCenterTopology (and ClusterManager, for AL membership)
// bump a mutation epoch on every element failure/recovery/layer change,
// and a cached leg is served in three tiers:
//
//   hit         — the epoch has not moved since the leg was validated;
//                 the slice subgraph is provably unchanged, serve as-is.
//   revalidate  — the epoch moved, but the slice's own fingerprint
//                 (membership + failure state of every slice element and
//                 slice-internal link) matches the one the leg was
//                 computed under, and the path's hops still walk clean
//                 against the live element table. The filtered BFS sees an
//                 identical subgraph, so the cached result IS the BFS
//                 result; serve it and stamp the new epoch.
//   stale/miss  — the fingerprint changed (or no variant exists): fall
//                 back to the full BFS, then cache the fresh leg.
//
// Bit-identity is the design invariant, not best-effort: the fingerprint
// covers everything the filtered BFS can observe (slice membership, per-
// element failed flags, slice-internal link cuts), and the deterministic
// switch-graph rebuild preserves the relative adjacency order of surviving
// neighbors, so equal fingerprints imply equal BFS tie-breaking. A 20-seed
// differential test asserts cached == uncached on full fault workloads.
//
// Each leg key retains a small ring of fingerprint variants (MRU-first),
// so the common fail -> recover -> fail oscillation of a churn workload
// hits from the second cycle onward instead of recomputing every flip.
//
// Threading contract: externally synchronized, same as the orchestrator
// that owns it — single writer, no concurrent use during mutation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "nfv/nfc.h"
#include "orchestrator/routing.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::orchestrator {

using alvc::util::ClusterId;

/// Rung of the degraded-mode bandwidth ladder a route is keyed under.
/// Plain shortest-path legs are bandwidth-independent, so the orchestrator
/// routes everything under kFull; the tier keeps entries reserved at
/// different rungs from aliasing if a bandwidth-aware leg source is ever
/// cached, and partitions stats in tests.
enum class BandwidthTier : std::uint8_t { kFull = 0, kHalf = 1, kQuarter = 2, kEighth = 3 };

/// The ladder rung for a fraction of demanded bandwidth (1.0 -> kFull,
/// 0.5 -> kHalf, 0.25 -> kQuarter, anything at or below 0.125 -> kEighth).
[[nodiscard]] BandwidthTier bandwidth_tier(double fraction) noexcept;

struct RouteCacheStats {
  std::uint64_t hits = 0;             // epoch unchanged; served as-is
  std::uint64_t revalidations = 0;    // fingerprint + hop walk passed under a new epoch
  std::uint64_t misses = 0;           // full BFS ran (no variant, or all stale)
  std::uint64_t stale_evictions = 0;  // variants dropped after failing revalidation
  std::uint64_t bypasses = 0;         // request not cacheable (stop outside the slice)
  std::uint64_t invalidations = 0;    // variants dropped by invalidate_slice/clear
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + revalidations + misses;
  }
};

class RouteCache {
 public:
  explicit RouteCache(const alvc::topology::DataCenterTopology& topo) : topo_(&topo) {}

  /// Cached counterpart of `router.route(...)`: identical stops, assembly,
  /// and error behavior, with each leg served from the memo when its slice
  /// state provably matches. Requests whose stops leave the slice (an
  /// ingress/egress or attach vertex outside the AL) bypass the cache and
  /// delegate to the router untouched.
  /// `cls` partitions the key space by QoS class: a HIPRI leg and a LOPRI
  /// leg between the same endpoints never share a cached variant, so a
  /// class-aware leg source can diverge per class without aliasing.
  [[nodiscard]] Expected<ChainRoute> route(
      const ChainRouter& router, const alvc::cluster::VirtualCluster& cluster, TorId ingress,
      TorId egress, std::span<const alvc::nfv::HostRef> hosts, BandwidthTier tier,
      alvc::nfv::PriorityClass cls = alvc::nfv::PriorityClass::kHipri);

  /// Cached counterpart of `router.route_graph(...)` (same contract).
  [[nodiscard]] Expected<ChainRoute> route_graph(
      const ChainRouter& router, const alvc::cluster::VirtualCluster& cluster, TorId ingress,
      TorId egress, const alvc::nfv::ForwardingGraph& graph,
      std::span<const alvc::nfv::HostRef> node_hosts, BandwidthTier tier,
      alvc::nfv::PriorityClass cls = alvc::nfv::PriorityClass::kHipri);

  /// Drops every cached leg of `cluster`'s slice (all tiers). Called on
  /// slice teardown so a reused cluster id can never see another tenant's
  /// paths.
  void invalidate_slice(ClusterId cluster);

  /// Drops everything.
  void clear();

  [[nodiscard]] const RouteCacheStats& stats() const noexcept { return stats_; }
  /// Distinct (slice, src, dst, tier) keys held.
  [[nodiscard]] std::size_t entry_count() const noexcept { return legs_.size(); }
  /// Total fingerprint variants across all keys.
  [[nodiscard]] std::size_t variant_count() const noexcept;

  /// Auditor hook: every variant whose fingerprint matches its cluster's
  /// CURRENT slice state must hop-walk clean against the live element
  /// table and carry an intact path fingerprint — i.e. everything the
  /// cache would serve right now is servable. Returns violations.
  [[nodiscard]] std::vector<std::string> check_coherence(
      std::span<const alvc::cluster::VirtualCluster* const> clusters) const;

 private:
  struct LegKey {
    std::uint64_t cluster = 0;  // ClusterId value
    std::uint8_t tier = 0;
    std::uint8_t cls = 0;  // PriorityClass value
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    bool operator==(const LegKey&) const = default;
  };
  struct LegKeyHash {
    [[nodiscard]] std::size_t operator()(const LegKey& k) const noexcept;
  };
  /// One cached path, valid under one slice fingerprint.
  struct Variant {
    std::uint64_t slice_fp = 0;        // slice state the path was computed under
    std::uint64_t validated_epoch = 0; // mutation epoch at last validation
    std::uint64_t path_fp = 0;         // graph::path_fingerprint of `path`
    std::vector<std::size_t> path;
  };
  struct Entry {
    std::vector<Variant> variants;  // MRU-first, capped at kMaxVariants
  };
  /// Per-cluster fingerprint memo: valid for exactly one epoch.
  struct SliceState {
    std::uint64_t epoch = 0;
    std::uint64_t fingerprint = 0;
    bool valid = false;
  };

  static constexpr std::size_t kMaxVariants = 4;

  /// Membership + failure state of every slice element and slice-internal
  /// link, in deterministic AL order. Equal fingerprints imply the
  /// filtered BFS sees an identical subgraph.
  [[nodiscard]] std::uint64_t slice_fingerprint(
      const alvc::cluster::VirtualCluster& cluster) const;
  /// Memoized slice_fingerprint for the given epoch.
  [[nodiscard]] std::uint64_t slice_state(const alvc::cluster::VirtualCluster& cluster,
                                          std::uint64_t epoch);
  /// Cheap live-table check: every hop's endpoints usable, in the slice,
  /// and every ToR-OPS hop's cable intact.
  [[nodiscard]] bool walk_live(const alvc::cluster::VirtualCluster& cluster,
                               std::span<const std::size_t> path) const;
  /// True when every stop is a slice vertex (cacheable: allowed == slice).
  [[nodiscard]] bool stops_in_slice(const alvc::cluster::VirtualCluster& cluster,
                                    std::span<const std::size_t> stops) const;
  /// The leg source shared by route()/route_graph(): memo first, the
  /// router's own BFS on miss. `allowed` is built lazily on first miss.
  [[nodiscard]] Expected<std::vector<std::size_t>> cached_leg(
      const alvc::cluster::VirtualCluster& cluster, BandwidthTier tier,
      alvc::nfv::PriorityClass cls, alvc::graph::VertexSet& allowed, std::size_t from,
      std::size_t to, std::size_t leg_index);

  const alvc::topology::DataCenterTopology* topo_;
  std::unordered_map<LegKey, Entry, LegKeyHash> legs_;
  std::unordered_map<ClusterId, SliceState> slice_states_;
  RouteCacheStats stats_;
};

}  // namespace alvc::orchestrator
