#include "orchestrator/oeo.h"

namespace alvc::orchestrator {

using alvc::nfv::HostRef;
using alvc::nfv::is_optical_host;
using alvc::util::ServerId;

OeoCount count_conversions(std::span<const HostRef> hosts) {
  OeoCount count;
  bool in_electronic_run = false;
  ServerId run_server = ServerId::invalid();
  for (const HostRef& host : hosts) {
    if (is_optical_host(host)) {
      in_electronic_run = false;
      run_server = ServerId::invalid();
      continue;
    }
    const ServerId server = std::get<ServerId>(host);
    if (!in_electronic_run || server != run_server) {
      ++count.mid_chain;  // new excursion into the electronic domain
      in_electronic_run = true;
      run_server = server;
    }
  }
  return count;
}

double conversion_energy(const OeoCount& count, double bytes, const OeoCostModel& model) {
  return static_cast<double>(count.total()) * bytes * model.conversion_joules_per_byte;
}

}  // namespace alvc::orchestrator
