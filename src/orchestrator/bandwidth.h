// Per-link bandwidth bookkeeping.
//
// Chains carry a bandwidth demand ("network resource requirements (node and
// links)", §IV-A). The ledger tracks, per switch-graph link, how much of
// its capacity is reserved, so provisioning can reserve along the routed
// walk and teardown can return it. Slices are OPS-disjoint, but ToR-OPS
// links of shared ToRs and future multi-chain extensions make the explicit
// ledger worthwhile — and it exposes per-link headroom for diagnostics.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/topology.h"
#include "util/error.h"

namespace alvc::orchestrator {

class BandwidthLedger {
 public:
  /// Capacities derive from the topology: a link carries
  /// min(port bandwidth of its endpoints) Gbps.
  explicit BandwidthLedger(const alvc::topology::DataCenterTopology& topo) : topo_(&topo) {}

  /// Total capacity of the link between adjacent switch vertices.
  [[nodiscard]] double capacity_gbps(std::size_t u, std::size_t v) const;
  /// Unreserved capacity of the link.
  [[nodiscard]] double free_gbps(std::size_t u, std::size_t v) const;
  /// Currently reserved bandwidth on the link.
  [[nodiscard]] double reserved_gbps(std::size_t u, std::size_t v) const;

  /// Atomically reserves `gbps` on every distinct link of `walk` (a vertex
  /// sequence; repeated links count once). kCapacityExceeded if any link
  /// lacks headroom; nothing is reserved in that case.
  [[nodiscard]] alvc::util::Status reserve_walk(std::span<const std::size_t> walk, double gbps);

  /// Releases a prior reservation (same walk, same gbps). Over-release is
  /// clamped at zero.
  void release_walk(std::span<const std::size_t> walk, double gbps);

  /// Links with reservations, for diagnostics.
  [[nodiscard]] std::size_t reserved_link_count() const noexcept { return reserved_.size(); }
  /// Highest reserved/capacity ratio across links (0 when nothing reserved).
  [[nodiscard]] double peak_load() const;

  /// One reserved link, unpacked for audits.
  struct ReservedLink {
    std::size_t u = 0;  // switch-graph vertices, u < v
    std::size_t v = 0;
    double gbps = 0;
  };
  /// Every link with a non-zero reservation, sorted by (u, v) so exports
  /// and telemetry are deterministic.
  [[nodiscard]] std::vector<ReservedLink> reserved_links() const;

 private:
  using LinkKey = std::uint64_t;
  [[nodiscard]] static LinkKey key(std::size_t u, std::size_t v) noexcept;
  [[nodiscard]] static std::vector<LinkKey> distinct_links(std::span<const std::size_t> walk);
  [[nodiscard]] double capacity_of_key(LinkKey k) const;
  [[nodiscard]] double vertex_port(std::size_t v) const;

  const alvc::topology::DataCenterTopology* topo_;
  std::unordered_map<LinkKey, double> reserved_;
};

}  // namespace alvc::orchestrator
