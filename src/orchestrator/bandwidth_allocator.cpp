#include "orchestrator/bandwidth_allocator.h"

#include <algorithm>
#include <limits>

namespace alvc::orchestrator {

using alvc::nfv::PriorityClass;
using alvc::util::NfcId;

namespace {

constexpr double kEps = 1e-9;

/// Progressive filling over an arbitrary resource set: raise one common
/// level for every chain in `order`; a chain freezes when it reaches its
/// demand or when a resource it uses saturates. `used` carries reservations
/// already granted (e.g. the HIPRI tier when filling LOPRI) and is updated
/// in place. Returns the final common level; `iterations` counts rounds.
double progressive_fill(std::span<const AllocChain> chains, std::span<const double> capacity,
                        std::span<const std::size_t> order, std::vector<double>& used,
                        std::vector<double>& share, std::size_t& iterations) {
  std::vector<bool> frozen(chains.size(), true);
  std::size_t unfrozen = 0;
  for (std::size_t i : order) {
    share[i] = 0;
    if (chains[i].demand_gbps <= kEps) continue;
    if (chains[i].uses.empty()) {
      share[i] = chains[i].demand_gbps;  // uncontended: grant in full
      continue;
    }
    frozen[i] = false;
    ++unfrozen;
  }
  double level = 0;
  while (unfrozen > 0) {
    ++iterations;
    // Active weight per resource: units consumed per unit of level raise.
    std::vector<double> weight(capacity.size(), 0.0);
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i : order) {
      if (frozen[i]) continue;
      delta = std::min(delta, chains[i].demand_gbps - share[i]);
      for (const auto& [r, coeff] : chains[i].uses) weight[r] += coeff;
    }
    for (std::size_t r = 0; r < capacity.size(); ++r) {
      if (weight[r] <= kEps) continue;
      delta = std::min(delta, (capacity[r] - used[r]) / weight[r]);
    }
    delta = std::max(delta, 0.0);
    level += delta;
    for (std::size_t i : order) {
      if (frozen[i]) continue;
      share[i] += delta;
      for (const auto& [r, coeff] : chains[i].uses) used[r] += coeff * delta;
    }
    // Freeze satisfied chains and every chain riding a saturated resource.
    std::size_t froze = 0;
    for (std::size_t i : order) {
      if (frozen[i]) continue;
      bool stop = share[i] >= chains[i].demand_gbps - kEps;
      if (!stop) {
        for (const auto& [r, coeff] : chains[i].uses) {
          if (capacity[r] - used[r] <= kEps) {
            stop = true;
            break;
          }
        }
      }
      if (stop) {
        frozen[i] = true;
        ++froze;
        --unfrozen;
      }
    }
    // Numerical backstop: a round that froze nothing cannot make progress.
    if (froze == 0) break;
  }
  return level;
}

}  // namespace

WaterFillResult water_fill(std::span<const double> demands, double capacity_gbps) {
  std::vector<AllocChain> chains(demands.size());
  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    chains[i].id = NfcId{static_cast<NfcId::value_type>(i)};
    chains[i].demand_gbps = demands[i];
    chains[i].uses = {{0U, 1.0}};
    order[i] = i;
  }
  const std::array<double, 1> capacity{std::max(capacity_gbps, 0.0)};
  std::vector<double> used(1, 0.0);
  WaterFillResult result;
  result.grants.assign(demands.size(), 0.0);
  result.level =
      progressive_fill(chains, capacity, order, used, result.grants, result.iterations);
  return result;
}

double BandwidthAllocator::quantize_down(double demand_gbps, double share_gbps) noexcept {
  if (demand_gbps <= 0) return 0;
  for (double fraction : kLadder) {
    const double rung = demand_gbps * fraction;
    if (rung <= share_gbps + kEps) return rung;
  }
  return 0;
}

double BandwidthAllocator::next_rung_gbps(double demand_gbps, double current_gbps) noexcept {
  if (demand_gbps <= 0 || current_gbps >= demand_gbps - kEps) return 0;
  // kLadder is descending; the smallest rung above the current grant wins.
  double next = demand_gbps;
  for (double fraction : kLadder) {
    const double rung = demand_gbps * fraction;
    if (rung > current_gbps + kEps) next = rung;
  }
  return next;
}

AllocationPlan BandwidthAllocator::plan(std::span<const AllocChain> chains,
                                        std::span<const AllocResource> resources) const {
  AllocationPlan out;
  out.target_gbps.assign(chains.size(), 0.0);
  if (policy_ == AllocationPolicy::kStrictLadder) {
    // Strict behavior lives in the legacy fit path; the plan is a no-op
    // identity so callers never shrink or shed under it.
    for (std::size_t i = 0; i < chains.size(); ++i) out.target_gbps[i] = chains[i].demand_gbps;
    return out;
  }

  std::vector<double> capacity(resources.size());
  for (std::size_t r = 0; r < resources.size(); ++r) capacity[r] = resources[r].capacity_gbps;

  // Deterministic orders: ids ascending, HIPRI before LOPRI where classes
  // matter. Inputs are not assumed sorted.
  std::vector<std::size_t> by_id(chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) by_id[i] = i;
  std::sort(by_id.begin(), by_id.end(),
            [&](std::size_t a, std::size_t b) { return chains[a].id < chains[b].id; });
  std::vector<std::size_t> hipri;
  std::vector<std::size_t> lopri;
  for (std::size_t i : by_id) {
    (chains[i].cls == PriorityClass::kHipri ? hipri : lopri).push_back(i);
  }

  // Continuous max-min shares.
  std::vector<double> used(resources.size(), 0.0);
  std::vector<double> share(chains.size(), 0.0);
  if (policy_ == AllocationPolicy::kWaterFill) {
    progressive_fill(chains, capacity, by_id, used, share, out.fill_iterations);
  } else {
    // Two-tier: HIPRI fills against raw capacity, LOPRI against what's left.
    progressive_fill(chains, capacity, hipri, used, share, out.fill_iterations);
    progressive_fill(chains, capacity, lopri, used, share, out.fill_iterations);
  }

  // Quantize down to the ladder and re-derive usage from the rungs.
  std::fill(used.begin(), used.end(), 0.0);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    out.target_gbps[i] = quantize_down(chains[i].demand_gbps, share[i]);
    for (const auto& [r, coeff] : chains[i].uses) used[r] += coeff * out.target_gbps[i];
  }

  const auto fits = [&](std::size_t i, double add) {
    for (const auto& [r, coeff] : chains[i].uses) {
      if (used[r] + coeff * add > capacity[r] + kEps) return false;
    }
    return true;
  };
  const auto grant = [&](std::size_t i, double add) {
    out.target_gbps[i] += add;
    for (const auto& [r, coeff] : chains[i].uses) used[r] += coeff * add;
  };
  // Climb a single chain as far as its resources allow, one rung at a time.
  const auto climb_one = [&](std::size_t i) {
    for (;;) {
      const double next = next_rung_gbps(chains[i].demand_gbps, out.target_gbps[i]);
      if (next <= 0 || !fits(i, next - out.target_gbps[i])) return;
      grant(i, next - out.target_gbps[i]);
    }
  };
  const auto climb_pass = [&](std::span<const std::size_t> order) {
    for (std::size_t i : order) climb_one(i);
  };

  if (policy_ == AllocationPolicy::kWaterFill) {
    // Work conservation: quantization can strand up to a rung of headroom
    // per chain; a single ordered pass reclaims it (climbs only consume,
    // so no chain can climb again after its turn).
    climb_pass(by_id);
    return out;
  }

  // kPriorityDowngrade: climb HIPRI first, then shed LOPRI rung-by-rung
  // wherever that unblocks a short HIPRI. The loop terminates because every
  // progressing round removes at least one LOPRI rung. At exit, any still-
  // short HIPRI is blocked on a resource carrying zero LOPRI usage — the
  // priority-feasibility invariant StateAuditor re-derives.
  climb_pass(hipri);
  for (;;) {
    bool progressed = false;
    for (std::size_t h : hipri) {
      climb_one(h);
      for (;;) {
        const double next = next_rung_gbps(chains[h].demand_gbps, out.target_gbps[h]);
        if (next <= 0) break;
        const double add = next - out.target_gbps[h];
        // Lowest-id LOPRI holding bandwidth on any resource blocking h.
        std::size_t victim = chains.size();
        for (const auto& [r, coeff] : chains[h].uses) {
          if (used[r] + coeff * add <= capacity[r] + kEps) continue;  // not blocking
          for (std::size_t l : lopri) {
            if (out.target_gbps[l] <= kEps) continue;
            const bool on_r = std::any_of(
                chains[l].uses.begin(), chains[l].uses.end(),
                [&](const std::pair<std::uint32_t, double>& use) { return use.first == r; });
            if (on_r && (victim == chains.size() || chains[l].id < chains[victim].id)) {
              victim = l;
            }
          }
        }
        if (victim == chains.size()) break;
        // Demote the victim one rung (1/8 sheds to zero).
        double demoted = 0;
        for (double fraction : kLadder) {
          const double rung = chains[victim].demand_gbps * fraction;
          if (rung < out.target_gbps[victim] - kEps) {
            demoted = rung;
            break;
          }
        }
        grant(victim, demoted - out.target_gbps[victim]);
        ++out.lopri_demotions;
        progressed = true;
        climb_one(h);
      }
    }
    if (!progressed) break;
  }
  // Final work-conservation passes: HIPRI reclaims anything shedding freed
  // beyond what the blocked chains absorbed, then LOPRI takes the rest.
  climb_pass(hipri);
  climb_pass(lopri);
  return out;
}

}  // namespace alvc::orchestrator
