#include "orchestrator/shard.h"

#include <algorithm>

namespace alvc::orchestrator {

void ControlShard::add_chain(NfcId id, ClusterId cluster) {
  std::vector<NfcId>& members = by_cluster_[cluster.value()];
  const auto mit = std::lower_bound(members.begin(), members.end(), id);
  if (mit != members.end() && *mit == id) return;  // already registered here
  members.insert(mit, id);
  if (++refs_[id.value()] > 1) return;  // known via another cluster
  const auto it = std::lower_bound(chain_ids_.begin(), chain_ids_.end(), id);
  chain_ids_.insert(it, id);
}

void ControlShard::remove_chain(NfcId id, ClusterId cluster) {
  const auto cit = by_cluster_.find(cluster.value());
  if (cit == by_cluster_.end()) return;
  std::vector<NfcId>& members = cit->second;
  const auto mit = std::lower_bound(members.begin(), members.end(), id);
  if (mit == members.end() || *mit != id) return;
  members.erase(mit);
  if (members.empty()) by_cluster_.erase(cit);
  const auto rit = refs_.find(id.value());
  if (rit == refs_.end() || --rit->second > 0) return;  // still registered elsewhere
  refs_.erase(rit);
  const auto it = std::lower_bound(chain_ids_.begin(), chain_ids_.end(), id);
  if (it != chain_ids_.end() && *it == id) chain_ids_.erase(it);
}

bool ControlShard::enqueue_retry(RetryEntry entry) {
  for (const RetryEntry& queued : retries_) {
    if (queued.id == entry.id) return false;
  }
  retries_.push_back(entry);
  ++counters_.retries_enqueued;
  return true;
}

}  // namespace alvc::orchestrator
