// Optical slices (paper §IV-B/C, Fig. 7).
//
// The orchestrator "logically divides the optical network into virtual
// slices and allocates each slice to a single NFC. In AL-VC, that division
// is in the shape of ALs": slice == the AL of one virtual cluster, bound
// 1:1 to one chain. SliceManager enforces the bijection and hands out the
// per-slice resource view (which OPSs / ToRs / servers the chain may use).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "nfv/nfc.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::orchestrator {

using alvc::util::ClusterId;
using alvc::util::Expected;
using alvc::util::NfcId;
using alvc::util::SliceId;
using alvc::util::Status;

struct OpticalSlice {
  SliceId id;
  ClusterId cluster;  // the VC whose AL forms this slice
  NfcId nfc;          // the one chain bound to it
  double bandwidth_gbps = 0.0;
  /// QoS class of the bound chain's aggregate; the bandwidth allocator
  /// sheds kLopri slices first under overload.
  alvc::nfv::PriorityClass priority = alvc::nfv::PriorityClass::kHipri;
  /// Bumped on every bandwidth change (degraded-ladder refits); consumers
  /// holding per-slice derived state compare epochs instead of polling the
  /// bandwidth value.
  std::uint64_t epoch = 0;
};

class SliceManager {
 public:
  /// Binds `cluster`'s AL to `nfc` as a new slice. kConflict if the cluster
  /// already backs a slice (one VC hosts one NFC) or the chain already has
  /// one.
  [[nodiscard]] Expected<SliceId> allocate(
      ClusterId cluster, NfcId nfc, double bandwidth_gbps,
      alvc::nfv::PriorityClass priority = alvc::nfv::PriorityClass::kHipri);

  /// Releases the slice bound to `nfc`.
  [[nodiscard]] Status release(NfcId nfc);

  /// Records the bandwidth `nfc`'s slice actually carries (degraded-mode
  /// refits reserve a rung of the 1/2/4/8 ladder, not the spec's demand)
  /// and bumps the slice epoch. kNotFound when the chain has no slice.
  [[nodiscard]] Status set_bandwidth(NfcId nfc, double bandwidth_gbps);

  [[nodiscard]] std::optional<OpticalSlice> slice_of_chain(NfcId nfc) const;
  [[nodiscard]] std::optional<OpticalSlice> slice_of_cluster(ClusterId cluster) const;
  [[nodiscard]] std::size_t slice_count() const noexcept { return by_nfc_.size(); }
  [[nodiscard]] std::vector<OpticalSlice> slices() const;

 private:
  std::unordered_map<NfcId, OpticalSlice> by_nfc_;
  std::unordered_map<ClusterId, NfcId> by_cluster_;
  SliceId::value_type next_id_ = 0;
};

}  // namespace alvc::orchestrator
