#include "orchestrator/admission.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "graph/max_flow.h"
#include "telemetry/telemetry.h"

namespace alvc::orchestrator {

using alvc::nfv::HostRef;
using alvc::topology::Resources;
using alvc::util::Error;
using alvc::util::ErrorCode;

AdmissionDecision AdmissionController::check(const alvc::nfv::NfcSpec& spec,
                                             const alvc::cluster::VirtualCluster& cluster,
                                             const alvc::nfv::HostingPool& pool) const {
  return check_with_policy(spec, cluster, pool, AllocationPolicy::kStrictLadder);
}

AdmissionDecision AdmissionController::check_with_policy(
    const alvc::nfv::NfcSpec& spec, const alvc::cluster::VirtualCluster& cluster,
    const alvc::nfv::HostingPool& pool, AllocationPolicy policy) const {
  const bool qos = policy != AllocationPolicy::kStrictLadder;
  if (spec.functions.empty()) {
    return {Error{ErrorCode::kRejected, "chain has no functions"},
            AdmissionOutcome::kRejectedMalformed};
  }
  if (spec.bandwidth_gbps <= 0) {
    return {Error{ErrorCode::kRejected, "non-positive bandwidth request"},
            AdmissionOutcome::kRejectedMalformed};
  }
  // Bandwidth: the chain rides the slice's ToRs and OPSs; the tightest
  // port on the slice bounds it.
  double min_port = std::numeric_limits<double>::infinity();
  for (alvc::util::TorId t : cluster.layer.tors) {
    min_port = std::min(min_port, topo_->tor(t).port_bandwidth_gbps);
  }
  for (alvc::util::OpsId o : cluster.layer.opss) {
    min_port = std::min(min_port, topo_->ops(o).port_bandwidth_gbps);
  }
  // Under a QoS policy a full-demand bandwidth failure is downgraded to the
  // largest ladder rung the slice can carry instead of hard-rejected; the
  // rejection is kept around in case no rung fits either.
  AdmissionDecision rejection;
  bool needs_downgrade = false;
  if (spec.bandwidth_gbps > min_port) {
    rejection = {Error{ErrorCode::kRejected, "requested " + std::to_string(spec.bandwidth_gbps) +
                                                 " Gbps exceeds slice port " +
                                                 std::to_string(min_port) + " Gbps"},
                 AdmissionOutcome::kRejectedBandwidth};
    if (!qos) return rejection;
    needs_downgrade = true;
  }
  // Max-flow feasibility between the chain's default anchors: a single
  // fat port does not help if some slice-internal cut is thinner.
  double cap = min_port;
  if (!cluster.layer.tors.empty()) {
    const double capacity = slice_capacity_gbps(cluster, cluster.layer.tors.front(),
                                                cluster.layer.tors.back());
    cap = std::min(cap, capacity);
    if (!needs_downgrade && spec.bandwidth_gbps > capacity + 1e-9) {
      rejection = {
          Error{ErrorCode::kRejected, "requested " + std::to_string(spec.bandwidth_gbps) +
                                          " Gbps exceeds the slice's min-cut capacity of " +
                                          std::to_string(capacity) + " Gbps"},
          AdmissionOutcome::kRejectedCapacityFlow};
      if (!qos) return rejection;
      needs_downgrade = true;
    }
  }
  double granted = spec.bandwidth_gbps;
  AdmissionOutcome admitted_as = AdmissionOutcome::kAdmitted;
  if (needs_downgrade) {
    granted = 0;
    for (double fraction : BandwidthAllocator::kLadder) {
      if (fraction >= 1.0) continue;  // full demand already failed
      if (spec.bandwidth_gbps * fraction <= cap + 1e-9) {
        granted = spec.bandwidth_gbps * fraction;
        break;
      }
    }
    if (granted <= 0) return rejection;  // not even the 1/8 rung fits
    admitted_as = AdmissionOutcome::kAdmittedDowngraded;
  }
  // Aggregate resource feasibility (necessary condition).
  Resources total_demand;
  for (alvc::util::VnfId fn : spec.functions) {
    total_demand += catalog_->descriptor(fn).demand;
  }
  Resources total_free;
  for (alvc::util::OpsId o : cluster.layer.opss) {
    if (topo_->ops(o).optoelectronic) total_free += pool.free_capacity(HostRef{o});
  }
  for (alvc::util::TorId t : cluster.layer.tors) {
    for (alvc::util::ServerId s : topo_->tor(t).servers) {
      total_free += pool.free_capacity(HostRef{s});
    }
  }
  if (!total_demand.fits_within(total_free)) {
    return {Error{ErrorCode::kRejected, "slice lacks aggregate capacity for the chain"},
            AdmissionOutcome::kRejectedResources};
  }
  return {Status::ok(), admitted_as, granted};
}

void AdmissionController::record(const AdmissionDecision& decision) noexcept {
  // The single choke point every admission verdict flows through; the
  // telemetry counters mirror stats_ so dashboards and the in-process
  // AdmissionStats always agree.
  switch (decision.outcome) {
    case AdmissionOutcome::kAdmitted:
      ++stats_.admitted;
      ALVC_COUNT("orchestrator.admission.admitted");
      break;
    case AdmissionOutcome::kAdmittedDowngraded:
      ++stats_.admitted_downgraded;
      ALVC_COUNT("orchestrator.admission.admitted_downgraded");
      break;
    case AdmissionOutcome::kRejectedMalformed:
      ++stats_.rejected_malformed;
      ALVC_COUNT("orchestrator.admission.rejected_malformed");
      break;
    case AdmissionOutcome::kRejectedBandwidth:
      ++stats_.rejected_bandwidth;
      ALVC_COUNT("orchestrator.admission.rejected_bandwidth");
      break;
    case AdmissionOutcome::kRejectedCapacityFlow:
      ++stats_.rejected_capacity_flow;
      ALVC_COUNT("orchestrator.admission.rejected_capacity_flow");
      break;
    case AdmissionOutcome::kRejectedResources:
      ++stats_.rejected_resources;
      ALVC_COUNT("orchestrator.admission.rejected_resources");
      break;
  }
}

Status AdmissionController::admit(const alvc::nfv::NfcSpec& spec,
                                  const alvc::cluster::VirtualCluster& cluster,
                                  const alvc::nfv::HostingPool& pool) {
  return admit_with_policy(spec, cluster, pool, AllocationPolicy::kStrictLadder).status;
}

AdmissionDecision AdmissionController::admit_with_policy(
    const alvc::nfv::NfcSpec& spec, const alvc::cluster::VirtualCluster& cluster,
    const alvc::nfv::HostingPool& pool, AllocationPolicy policy) {
  AdmissionDecision decision = check_with_policy(spec, cluster, pool, policy);
  record(decision);
  return decision;
}

double AdmissionController::slice_capacity_gbps(const alvc::cluster::VirtualCluster& cluster,
                                                alvc::util::TorId ingress,
                                                alvc::util::TorId egress) const {
  if (ingress == egress) return std::numeric_limits<double>::infinity();
  // Dense re-index of the slice's switch vertices.
  std::unordered_map<std::size_t, std::size_t> index;
  std::unordered_set<std::size_t> members;
  const auto add_member = [&](std::size_t v) {
    if (members.insert(v).second) index.emplace(v, index.size());
  };
  for (alvc::util::TorId t : cluster.layer.tors) add_member(topo_->tor_vertex(t));
  for (alvc::util::OpsId o : cluster.layer.opss) add_member(topo_->ops_vertex(o));
  const std::size_t src_v = topo_->tor_vertex(ingress);
  const std::size_t dst_v = topo_->tor_vertex(egress);
  add_member(src_v);
  add_member(dst_v);

  const auto port_of = [&](std::size_t v) {
    if (topo_->is_ops_vertex(v)) return topo_->ops(topo_->vertex_to_ops(v)).port_bandwidth_gbps;
    return topo_->tor(topo_->vertex_to_tor(v)).port_bandwidth_gbps;
  };

  alvc::graph::FlowNetwork net(index.size());
  const auto& g = topo_->switch_graph();
  for (const auto& edge : g.edges()) {
    if (!members.contains(edge.from) || !members.contains(edge.to)) continue;
    const double capacity = std::min(port_of(edge.from), port_of(edge.to));
    net.add_edge(index.at(edge.from), index.at(edge.to), capacity);
    net.add_edge(index.at(edge.to), index.at(edge.from), capacity);
  }
  return net.max_flow(index.at(src_v), index.at(dst_v));
}

}  // namespace alvc::orchestrator
