#include "orchestrator/slice.h"

#include <algorithm>

namespace alvc::orchestrator {

using alvc::util::Error;
using alvc::util::ErrorCode;

Expected<SliceId> SliceManager::allocate(ClusterId cluster, NfcId nfc, double bandwidth_gbps,
                                         alvc::nfv::PriorityClass priority) {
  if (bandwidth_gbps < 0) {
    return Error{ErrorCode::kInvalidArgument, "negative bandwidth"};
  }
  if (by_cluster_.contains(cluster)) {
    return Error{ErrorCode::kConflict,
                 "cluster " + std::to_string(cluster.value()) + " already backs a slice"};
  }
  if (by_nfc_.contains(nfc)) {
    return Error{ErrorCode::kConflict,
                 "NFC " + std::to_string(nfc.value()) + " already has a slice"};
  }
  const SliceId id{next_id_++};
  by_nfc_.emplace(nfc, OpticalSlice{id, cluster, nfc, bandwidth_gbps, priority});
  by_cluster_.emplace(cluster, nfc);
  return id;
}

Status SliceManager::release(NfcId nfc) {
  const auto it = by_nfc_.find(nfc);
  if (it == by_nfc_.end()) {
    return Error{ErrorCode::kNotFound, "no slice for NFC " + std::to_string(nfc.value())};
  }
  by_cluster_.erase(it->second.cluster);
  by_nfc_.erase(it);
  return Status::ok();
}

Status SliceManager::set_bandwidth(NfcId nfc, double bandwidth_gbps) {
  if (bandwidth_gbps < 0) {
    return Error{ErrorCode::kInvalidArgument, "negative bandwidth"};
  }
  const auto it = by_nfc_.find(nfc);
  if (it == by_nfc_.end()) {
    return Error{ErrorCode::kNotFound, "no slice for NFC " + std::to_string(nfc.value())};
  }
  if (it->second.bandwidth_gbps != bandwidth_gbps) {
    it->second.bandwidth_gbps = bandwidth_gbps;
    ++it->second.epoch;
  }
  return Status::ok();
}

std::optional<OpticalSlice> SliceManager::slice_of_chain(NfcId nfc) const {
  const auto it = by_nfc_.find(nfc);
  if (it == by_nfc_.end()) return std::nullopt;
  return it->second;
}

std::optional<OpticalSlice> SliceManager::slice_of_cluster(ClusterId cluster) const {
  const auto it = by_cluster_.find(cluster);
  if (it == by_cluster_.end()) return std::nullopt;
  return slice_of_chain(it->second);
}

std::vector<OpticalSlice> SliceManager::slices() const {
  std::vector<OpticalSlice> out;
  out.reserve(by_nfc_.size());
  for (const auto& [nfc, slice] : by_nfc_) out.push_back(slice);
  std::sort(out.begin(), out.end(),
            [](const OpticalSlice& a, const OpticalSlice& b) { return a.id < b.id; });
  return out;
}

}  // namespace alvc::orchestrator
