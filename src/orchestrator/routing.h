// Chain routing over the hybrid topology (paper Fig. 5).
//
// A provisioned chain's flow enters at an ingress ToR, visits its VNF hosts
// in order, and leaves at an egress ToR. Each leg is a shortest path in the
// switch graph RESTRICTED TO THE SLICE (the cluster's ToRs + its AL OPSs
// plus the leg endpoints) — that restriction is what makes slices isolated:
// a chain cannot ride another cluster's switches.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "graph/scratch.h"
#include "nfv/forwarding_graph.h"
#include "nfv/lifecycle.h"
#include "orchestrator/bandwidth.h"
#include "orchestrator/oeo.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::orchestrator {

using alvc::util::Expected;
using alvc::util::TorId;

struct ChainRoute {
  /// Concatenated switch-level walk (junction vertices not repeated).
  std::vector<std::size_t> vertices;
  /// Per-leg vertex paths (leg i connects stop i to stop i+1).
  std::vector<std::vector<std::size_t>> legs;
  std::size_t optical_hops = 0;     // OPS-OPS links traversed
  std::size_t electronic_hops = 0;  // links touching a ToR
  OeoCount conversions;             // from the hosts' domains

  [[nodiscard]] std::size_t total_hops() const noexcept {
    return optical_hops + electronic_hops;
  }
};

/// Supplies one leg of a chain route: the slice-internal path `from` ->
/// `to` for leg number `leg_index`. ChainRouter's default source runs a
/// filtered BFS; the route cache wraps the same BFS behind a memo so both
/// paths share every other step of route assembly (stop construction,
/// junction dedup, hop tallies) and stay bit-identical by construction.
using RouteLegSource = std::function<alvc::util::Expected<std::vector<std::size_t>>(
    std::size_t from, std::size_t to, std::size_t leg_index)>;

/// The BFS primitives route() is built from, exposed so the route cache's
/// miss path runs EXACTLY the computation it memoizes.
namespace routing_detail {

/// Vertices a chain of `cluster` may traverse, plus any explicit extras,
/// filled into `allowed` (reset to the switch graph's vertex count first).
/// A stamped dense set instead of a hash set: the BFS membership test on
/// the routing hot path becomes one array load.
void slice_vertices(const alvc::topology::DataCenterTopology& topo,
                    const alvc::cluster::VirtualCluster& cluster,
                    std::span<const std::size_t> extras, alvc::graph::VertexSet& allowed);

/// Shortest slice-internal path from `from` to `to`; kInfeasible when none.
[[nodiscard]] alvc::util::Expected<std::vector<std::size_t>> route_leg(
    const alvc::topology::DataCenterTopology& topo, const alvc::graph::VertexSet& allowed,
    std::size_t from, std::size_t to, std::size_t leg_index);

}  // namespace routing_detail

class ChainRouter {
 public:
  explicit ChainRouter(const alvc::topology::DataCenterTopology& topo) : topo_(&topo) {}

  /// Routes ingress -> hosts... -> egress inside `cluster`'s slice.
  /// kInfeasible when a leg cannot be completed inside the slice.
  [[nodiscard]] Expected<ChainRoute> route(const alvc::cluster::VirtualCluster& cluster,
                                           TorId ingress, TorId egress,
                                           std::span<const alvc::nfv::HostRef> hosts) const;

  /// route() with the per-leg path computation delegated to `legs`: same
  /// stops, same assembly, same conversion counting. route() itself is this
  /// with the default BFS source.
  [[nodiscard]] Expected<ChainRoute> route_via(const alvc::cluster::VirtualCluster& cluster,
                                               TorId ingress, TorId egress,
                                               std::span<const alvc::nfv::HostRef> hosts,
                                               const RouteLegSource& legs) const;

  /// Load-balanced variant of route(): each leg considers the k shortest
  /// slice-internal paths and takes the one with the largest bottleneck
  /// headroom in `ledger` (ties: shorter, then first). Spreads chains off
  /// already-reserved links at the cost of slightly longer paths.
  [[nodiscard]] Expected<ChainRoute> route_balanced(
      const alvc::cluster::VirtualCluster& cluster, TorId ingress, TorId egress,
      std::span<const alvc::nfv::HostRef> hosts, const BandwidthLedger& ledger,
      std::size_t k = 4) const;

  /// Routes a complex forwarding graph (paper §IV-A): one leg from the
  /// ingress to the entry node's host, one leg per DAG edge, and one leg
  /// from every exit node's host to the egress. `node_hosts[i]` is the host
  /// of graph node i. Mid-graph conversions are counted per DAG edge whose
  /// source host is optical and whose target host is electronic (each such
  /// edge forces the flow out of the optical domain).
  [[nodiscard]] Expected<ChainRoute> route_graph(
      const alvc::cluster::VirtualCluster& cluster, TorId ingress, TorId egress,
      const alvc::nfv::ForwardingGraph& graph,
      std::span<const alvc::nfv::HostRef> node_hosts) const;

  /// route_graph() with the per-leg computation delegated to `legs`.
  [[nodiscard]] Expected<ChainRoute> route_graph_via(
      const alvc::cluster::VirtualCluster& cluster, TorId ingress, TorId egress,
      const alvc::nfv::ForwardingGraph& graph, std::span<const alvc::nfv::HostRef> node_hosts,
      const RouteLegSource& legs) const;

  /// Switch-graph vertex where a host attaches (server -> its rack ToR,
  /// optoelectronic router -> its OPS vertex).
  [[nodiscard]] std::size_t attach_vertex(const alvc::nfv::HostRef& host) const;

  /// The stop sequence route() visits: ingress ToR vertex, each host's
  /// attach vertex in order, egress ToR vertex.
  [[nodiscard]] std::vector<std::size_t> chain_stops(
      TorId ingress, TorId egress, std::span<const alvc::nfv::HostRef> hosts) const;

 private:
  const alvc::topology::DataCenterTopology* topo_;
};

}  // namespace alvc::orchestrator
