// One shard of the sharded control plane (DESIGN.md §13).
//
// The paper's FIG7 architecture assigns each NFC its own optical slice and
// keeps slices independent, so the orchestrator's per-chain bookkeeping
// partitions cleanly by the cluster backing the slice. A ControlShard owns
// the slice of that bookkeeping for the clusters hashed to it:
//
//   * the shard's chain membership (ascending NfcId order, the order every
//     merged scan result is produced in), indexed per backing cluster so a
//     fault handler can scope a scan to the clusters its event touched,
//   * its segment of the degraded-chain retry queue,
//   * its own epoch-versioned RouteCache (route-cache keys are per-cluster,
//     so N per-shard caches behave exactly like the disjoint union of one
//     global cache), and
//   * plain per-shard counters.
//
// Threading contract: a shard is only ever touched by (a) the orchestrator
// thread between scans and (b) exactly one worker during a ControlAgent
// scan. Workers never touch another shard's state, which is why the
// counters are plain integers and why nothing here takes a lock — the one
// merge lock lives in ControlAgent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "orchestrator/route_cache.h"
#include "util/ids.h"

namespace alvc::orchestrator {

using alvc::util::ClusterId;
using alvc::util::NfcId;

/// One degraded chain waiting for another restoration attempt.
struct RetryEntry {
  NfcId id;
  std::size_t attempts = 0;
  std::uint64_t not_before = 0;  // earliest recovery epoch for the next try
};

/// Plain per-shard activity counters. Workers touch only their own shard's
/// struct, so no atomics are needed; the orchestrator folds these into
/// aggregate telemetry after a merge (metric macro names must be literals,
/// and no telemetry call may run inside a scan worker).
struct ShardCounters {
  std::uint64_t scans = 0;            // scan passes this shard ran
  std::uint64_t chains_visited = 0;   // classifier invocations
  std::uint64_t findings = 0;         // classifications that produced work
  std::uint64_t retries_enqueued = 0; // entries accepted into the segment
};

/// One classified chain out of a ControlAgent scan. `verdict` carries the
/// classifier's tag (e.g. the orchestrator's sweep verdict) and `links` the
/// per-chain link-key snapshot for bandwidth rebalances; unused fields stay
/// at their defaults.
struct ScanItem {
  NfcId id;
  int verdict = 0;
  std::vector<std::uint64_t> links;
};

class ControlShard {
 public:
  ControlShard(const alvc::topology::DataCenterTopology& topo, std::size_t index)
      : index_(index), cache_(topo) {}

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  /// Chains owned by this shard, ascending id.
  [[nodiscard]] const std::vector<NfcId>& chain_ids() const noexcept { return chain_ids_; }
  [[nodiscard]] std::size_t chain_count() const noexcept { return chain_ids_.size(); }
  /// Chains registered through `cluster` (ascending id), or null when the
  /// shard has none — the index scoped scans walk instead of chain_ids_.
  [[nodiscard]] const std::vector<NfcId>* cluster_chains(ClusterId cluster) const {
    const auto it = by_cluster_.find(cluster.value());
    return it == by_cluster_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] RouteCache& cache() noexcept { return cache_; }
  [[nodiscard]] const RouteCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const std::vector<RetryEntry>& retries() const noexcept { return retries_; }
  [[nodiscard]] const ShardCounters& counters() const noexcept { return counters_; }

 private:
  friend class ControlAgent;

  /// Registers the chain under `cluster`. Idempotent per (chain, cluster);
  /// a chain spanning several of the shard's clusters is still one entry in
  /// chain_ids_ (one membership) but appears in each cluster's index.
  void add_chain(NfcId id, ClusterId cluster);
  void remove_chain(NfcId id, ClusterId cluster);
  /// Appends unless an entry for the same chain is already queued.
  /// Returns whether the entry was accepted.
  bool enqueue_retry(RetryEntry entry);

  std::size_t index_;
  std::vector<NfcId> chain_ids_;  // ascending
  // Per-cluster membership plus how many clusters each chain is registered
  // through, so removing one registration of a multi-cluster chain keeps
  // its chain_ids_ entry until the last one goes.
  std::unordered_map<ClusterId::value_type, std::vector<NfcId>> by_cluster_;
  std::unordered_map<NfcId::value_type, std::uint32_t> refs_;
  std::vector<RetryEntry> retries_;
  RouteCache cache_;
  ShardCounters counters_;
};

}  // namespace alvc::orchestrator
