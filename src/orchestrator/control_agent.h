// Cluster-agent layer of the sharded control plane (DESIGN.md §13).
//
// A ControlAgent partitions the orchestrator's chains across N ControlShards
// by backing cluster (`cluster.value() % shard_count`) and runs the control
// plane's read-only passes shard-parallel on a util::Executor. The design
// follows the heyp cluster-agent shape: independent per-shard passes produce
// partial result sets, one merge lock folds them together, and every mutation
// happens afterwards on the single orchestrator thread.
//
// Determinism contract: scan() classifies chains with a caller-supplied pure
// function (no telemetry, no mutation — it runs concurrently on worker
// threads) and returns the merged findings sorted by ascending NfcId with
// duplicates removed, so the result is independent of shard count, executor
// width, and scheduling. The orchestrator then applies verdicts serially in
// that order, which is byte-identical to the legacy single-loop pass.
//
// Threading contract: all methods except the scan workers run on the single
// orchestrator thread. merge_mu_ (lock rank 15, a leaf: nothing else is
// locked and no telemetry runs under it) only guards the merge vector while
// workers append their partial results.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "orchestrator/shard.h"
#include "util/executor.h"
#include "util/ids.h"
#include "util/thread_annotations.h"

namespace alvc::orchestrator {

using alvc::util::ClusterId;

class ControlAgent {
 public:
  /// `shard_count` must be >= 1. `executor` may be null: every pass then
  /// runs serially in ascending shard order (same results, no threads).
  ControlAgent(const alvc::topology::DataCenterTopology& topo, std::size_t shard_count,
               alvc::util::Executor* executor);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] alvc::util::Executor* executor() const noexcept { return executor_; }

  /// Owning shard for a cluster: cluster.value() % shard_count.
  [[nodiscard]] std::size_t shard_of(ClusterId cluster) const noexcept {
    return static_cast<std::size_t>(cluster.value()) % shards_.size();
  }
  [[nodiscard]] ControlShard& shard(std::size_t index) { return shards_[index]; }
  [[nodiscard]] const ControlShard& shard(std::size_t index) const { return shards_[index]; }
  [[nodiscard]] ControlShard& shard_for_cluster(ClusterId cluster) {
    return shards_[shard_of(cluster)];
  }
  [[nodiscard]] const ControlShard& shard_for_cluster(ClusterId cluster) const {
    return shards_[shard_of(cluster)];
  }

  /// Registers a chain with the shard owning `primary` plus the shard of
  /// every cluster in `secondary` (forwarding graphs spanning clusters). A
  /// chain landing on one shard through several clusters is still a single
  /// membership; one spanning shards is scanned by each and deduplicated at
  /// merge time.
  void register_chain(NfcId id, ClusterId primary,
                      std::span<const ClusterId> secondary = {});
  void unregister_chain(NfcId id, ClusterId primary,
                        std::span<const ClusterId> secondary = {});

  /// Classifier for scan(): fill `item` (its `id` is pre-set) and return
  /// whether to include it in the merged result. Runs concurrently on
  /// worker threads — it must only read orchestrator state and must not
  /// touch telemetry.
  using Classifier = std::function<bool(NfcId id, ScanItem& item)>;

  /// Phase 1 of the two-phase pass: classify every registered chain,
  /// shard-parallel, and merge the partial results. Returns the findings
  /// sorted by ascending id, deduplicated (cross-shard chains are
  /// classified once per shard; the classifier is pure, so the copies are
  /// identical and the first is kept).
  [[nodiscard]] std::vector<ScanItem> scan(const Classifier& classify)
      ALVC_EXCLUDES(merge_mu_);

  /// scan() restricted to chains registered through the clusters in
  /// `scope` (a fault's blast radius). Each shard walks only its scoped
  /// clusters' membership indexes, so the pass costs O(affected chains)
  /// instead of O(all chains). The caller must guarantee that every chain
  /// NOT in scope would classify to "no work" — then the result is
  /// byte-identical to a full scan, because scan consumers ignore no-work
  /// chains. Duplicate clusters in `scope` are fine.
  [[nodiscard]] std::vector<ScanItem> scan_scoped(std::span<const ClusterId> scope,
                                                  const Classifier& classify)
      ALVC_EXCLUDES(merge_mu_);

  /// Queues a retry on the shard owning `cluster`, unless that shard
  /// already holds an entry for the chain. A chain's cluster never changes,
  /// so per-shard dedupe equals the serial queue's global dedupe. Returns
  /// whether the entry was accepted.
  bool enqueue_retry(RetryEntry entry, ClusterId cluster);

  /// Drains every shard's retry segment and returns the union sorted by
  /// ascending id (ids are unique across shards).
  [[nodiscard]] std::vector<RetryEntry> drain_retries();

  /// Retry entries queued across all shards.
  [[nodiscard]] std::size_t retry_count() const noexcept;

  /// Registered memberships across all shards (a cross-shard chain counts
  /// once per shard it is registered with).
  [[nodiscard]] std::size_t membership_count() const noexcept;

 private:
  alvc::util::Executor* executor_;
  std::vector<ControlShard> shards_;
  std::mutex merge_mu_;
};

}  // namespace alvc::orchestrator
