#include "graph/articulation.h"

#include <algorithm>

#include "graph/scratch.h"

namespace alvc::graph {

namespace {

/// Iterative Tarjan DFS (explicit stack: deep paths must not overflow the
/// call stack on large cores).
struct Tarjan {
  CsrView csr;
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<char> is_cut;
  int timer = 0;

  explicit Tarjan(const Graph& graph)
      : csr(graph.csr()), disc(graph.vertex_count(), -1), low(graph.vertex_count(), 0),
        is_cut(graph.vertex_count(), 0) {}

  void run(std::size_t root) {
    struct Frame {
      std::size_t vertex;
      std::size_t parent;
      std::size_t edge_index;  // position in neighbors(vertex)
      std::size_t children;
    };
    std::vector<Frame> stack;
    disc[root] = low[root] = timer++;
    stack.push_back(Frame{root, root, 0, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto neighbors = csr.neighbors(frame.vertex);
      if (frame.edge_index < neighbors.size()) {
        const std::size_t next = neighbors[frame.edge_index++].vertex;
        if (next == frame.vertex) continue;  // self loop
        if (disc[next] == -1) {
          ++frame.children;
          disc[next] = low[next] = timer++;
          stack.push_back(Frame{next, frame.vertex, 0, 0});
        } else if (next != frame.parent) {
          low[frame.vertex] = std::min(low[frame.vertex], disc[next]);
        }
        // Note: one parallel edge back to the parent is treated as the tree
        // edge; additional parallels are back edges only if next != parent,
        // so a doubled edge does NOT stop the parent being a cut vertex.
        // That matches the vertex-connectivity semantics we need (losing
        // the vertex kills every parallel link at once).
      } else {
        const Frame finished = frame;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent_frame = stack.back();
          low[parent_frame.vertex] = std::min(low[parent_frame.vertex], low[finished.vertex]);
          if (parent_frame.parent != parent_frame.vertex || parent_frame.children > 1) {
            // Non-root: cut if some child cannot reach above it.
            if (parent_frame.parent != parent_frame.vertex &&
                low[finished.vertex] >= disc[parent_frame.vertex]) {
              is_cut[parent_frame.vertex] = 1;
            }
          }
          if (parent_frame.parent == parent_frame.vertex &&
              low[finished.vertex] >= disc[parent_frame.vertex] && parent_frame.children > 1) {
            is_cut[parent_frame.vertex] = 1;
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<std::size_t> articulation_points(const Graph& g) {
  Tarjan tarjan(g);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (tarjan.disc[v] == -1) tarjan.run(v);
  }
  std::vector<std::size_t> cuts;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (tarjan.is_cut[v]) cuts.push_back(v);
  }
  return cuts;
}

std::vector<std::size_t> articulation_points_in_subgraph(const Graph& g,
                                                         std::span<const std::size_t> members) {
  // Dense re-indexing via a stamped map: first occurrence of each member
  // gets the next dense id, matching the old unordered_map build order.
  VertexIndexMap index;
  index.reset(g.vertex_count());
  std::vector<std::size_t> reverse;
  for (std::size_t v : members) {
    if (v >= g.vertex_count()) continue;
    if (!index.contains(v)) {
      index.put(v, reverse.size());
      reverse.push_back(v);
    }
  }
  Graph sub(reverse.size());
  for (const Edge& e : g.edges()) {
    if (index.contains(e.from) && index.contains(e.to)) {
      sub.add_edge(index.get(e.from), index.get(e.to));
    }
  }
  const auto cuts = articulation_points(sub);
  // Map back to original ids.
  std::vector<std::size_t> out;
  out.reserve(cuts.size());
  for (std::size_t c : cuts) out.push_back(reverse[c]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace alvc::graph
