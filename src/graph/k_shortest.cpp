#include "graph/k_shortest.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace alvc::graph {

namespace {

/// BFS shortest path avoiding `banned_vertices` and `banned_edges`
/// ((u,v) pairs, undirected semantics handled by the caller inserting both
/// orders when needed).
std::optional<std::vector<std::size_t>> constrained_bfs(
    const Graph& g, std::size_t source, std::size_t target, const VertexFilter& filter,
    const std::set<std::size_t>& banned_vertices,
    const std::set<std::pair<std::size_t, std::size_t>>& banned_edges) {
  if (banned_vertices.contains(source)) return std::nullopt;
  const auto combined = [&](std::size_t v) {
    if (banned_vertices.contains(v)) return false;
    return !filter || v == source || filter(v);
  };
  // Inline BFS honouring banned edges (graph::bfs has no edge filter).
  // Yen's loop calls this once per spur node per round; the thread scratch
  // amortises the per-vertex state across all of them (each call completes
  // before the next starts, so the one-owner contract holds).
  const CsrView csr = g.csr();
  TraversalScratch& scratch = thread_scratch();
  scratch.begin(g.vertex_count());
  scratch.mark(source);
  scratch.predecessor[source] = kNoVertex;
  scratch.frontier.push_back(source);
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const std::size_t v = scratch.frontier[head];
    if (v == target) break;
    for (const auto& nb : csr.neighbors(v)) {
      if (scratch.seen(nb.vertex) || !combined(nb.vertex)) continue;
      if (banned_edges.contains({v, nb.vertex})) continue;
      scratch.mark(nb.vertex);
      scratch.predecessor[nb.vertex] = v;
      scratch.frontier.push_back(nb.vertex);
    }
  }
  if (!scratch.seen(target)) return std::nullopt;
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != kNoVertex; v = scratch.predecessor[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return std::nullopt;
  return path;
}

}  // namespace

std::vector<std::vector<std::size_t>> k_shortest_paths(const Graph& g, std::size_t source,
                                                       std::size_t target, std::size_t k,
                                                       const VertexFilter& filter) {
  if (source >= g.vertex_count() || target >= g.vertex_count()) {
    throw std::out_of_range("k_shortest_paths: endpoint out of range");
  }
  std::vector<std::vector<std::size_t>> result;
  if (k == 0) return result;
  if (source == target) {
    result.push_back({source});
    return result;
  }
  auto first = constrained_bfs(g, source, target, filter, {}, {});
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool, ordered by (length, lexicographic) for determinism.
  const auto candidate_less = [](const std::vector<std::size_t>& a,
                                 const std::vector<std::size_t>& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  };
  std::set<std::vector<std::size_t>, decltype(candidate_less)> candidates(candidate_less);

  while (result.size() < k) {
    const auto& previous = result.back();
    // Branch at every spur node of the previous path.
    for (std::size_t i = 0; i + 1 < previous.size(); ++i) {
      const std::vector<std::size_t> root(previous.begin(),
                                          previous.begin() + static_cast<std::ptrdiff_t>(i + 1));
      std::set<std::pair<std::size_t, std::size_t>> banned_edges;
      for (const auto& path : result) {
        if (path.size() > i &&
            std::equal(root.begin(), root.end(), path.begin())) {
          if (path.size() > i + 1) {
            banned_edges.insert({path[i], path[i + 1]});
            banned_edges.insert({path[i + 1], path[i]});
          }
        }
      }
      std::set<std::size_t> banned_vertices(root.begin(), root.end() - 1);
      const auto spur =
          constrained_bfs(g, previous[i], target, filter, banned_vertices, banned_edges);
      if (!spur) continue;
      std::vector<std::size_t> total = root;
      total.insert(total.end(), spur->begin() + 1, spur->end());
      // Loopless by construction (root vertices banned from the spur).
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace alvc::graph
