// Disjoint-set union for connectivity checks.
//
// Used by topology validation (is the OPS core connected?) and by the AL
// builder's connectivity post-condition (do the chosen OPSs connect all
// selected ToRs?).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace alvc::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of v's set (path halving).
  [[nodiscard]] std::size_t find(std::size_t v);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  [[nodiscard]] bool connected(std::size_t a, std::size_t b);
  [[nodiscard]] std::size_t component_count() const noexcept { return components_; }
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::size_t components_;
};

/// Component label per vertex (labels are 0..k-1 in first-seen order).
[[nodiscard]] std::vector<std::size_t> connected_components(const Graph& g);

/// True if the whole graph is one component (empty graph counts connected).
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace alvc::graph
