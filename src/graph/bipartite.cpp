#include "graph/bipartite.h"

#include <algorithm>
#include <stdexcept>

namespace alvc::graph {

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  if (left >= left_count_) throw std::out_of_range("BipartiteGraph: left out of range");
  if (right >= right_count_) throw std::out_of_range("BipartiteGraph: right out of range");
  edges_.emplace_back(left, right);
  csr_stale_ = true;
}

void BipartiteGraph::ensure_csr() const {
  if (!csr_stale_) return;
  left_offsets_.assign(left_count_ + 1, 0);
  right_offsets_.assign(right_count_ + 1, 0);
  for (const auto& [l, r] : edges_) {
    ++left_offsets_[l + 1];
    ++right_offsets_[r + 1];
  }
  for (std::size_t v = 0; v < left_count_; ++v) left_offsets_[v + 1] += left_offsets_[v];
  for (std::size_t v = 0; v < right_count_; ++v) right_offsets_[v + 1] += right_offsets_[v];
  left_neighbors_.resize(edges_.size());
  right_neighbors_.resize(edges_.size());
  std::vector<std::size_t> left_cursor(left_offsets_.begin(), left_offsets_.end() - 1);
  std::vector<std::size_t> right_cursor(right_offsets_.begin(), right_offsets_.end() - 1);
  for (const auto& [l, r] : edges_) {
    left_neighbors_[left_cursor[l]++] = r;
    right_neighbors_[right_cursor[r]++] = l;
  }
  csr_stale_ = false;
}

std::span<const std::size_t> BipartiteGraph::left_neighbors(std::size_t left) const {
  if (left >= left_count_) throw std::out_of_range("BipartiteGraph: left out of range");
  ensure_csr();
  return std::span<const std::size_t>(left_neighbors_.data() + left_offsets_[left],
                                      left_offsets_[left + 1] - left_offsets_[left]);
}

std::span<const std::size_t> BipartiteGraph::right_neighbors(std::size_t right) const {
  if (right >= right_count_) throw std::out_of_range("BipartiteGraph: right out of range");
  ensure_csr();
  return std::span<const std::size_t>(right_neighbors_.data() + right_offsets_[right],
                                      right_offsets_[right + 1] - right_offsets_[right]);
}

bool BipartiteGraph::has_edge(std::size_t left, std::size_t right) const {
  const auto neighbors = left_neighbors(left);
  if (right >= right_count_) throw std::out_of_range("BipartiteGraph: right out of range");
  return std::find(neighbors.begin(), neighbors.end(), right) != neighbors.end();
}

}  // namespace alvc::graph
