#include "graph/bipartite.h"

#include <algorithm>
#include <stdexcept>

namespace alvc::graph {

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  if (left >= left_adj_.size()) throw std::out_of_range("BipartiteGraph: left out of range");
  if (right >= right_adj_.size()) throw std::out_of_range("BipartiteGraph: right out of range");
  left_adj_[left].push_back(right);
  right_adj_[right].push_back(left);
  ++edge_count_;
}

std::span<const std::size_t> BipartiteGraph::left_neighbors(std::size_t left) const {
  if (left >= left_adj_.size()) throw std::out_of_range("BipartiteGraph: left out of range");
  return left_adj_[left];
}

std::span<const std::size_t> BipartiteGraph::right_neighbors(std::size_t right) const {
  if (right >= right_adj_.size()) throw std::out_of_range("BipartiteGraph: right out of range");
  return right_adj_[right];
}

bool BipartiteGraph::has_edge(std::size_t left, std::size_t right) const {
  const auto neighbors = left_neighbors(left);
  if (right >= right_adj_.size()) throw std::out_of_range("BipartiteGraph: right out of range");
  return std::find(neighbors.begin(), neighbors.end(), right) != neighbors.end();
}

}  // namespace alvc::graph
