// Weighted set cover / max-coverage.
//
// The second stage of AL construction — choosing OPSs for the selected
// ToRs — is a set-cover instance: every chosen ToR must be attached to at
// least one chosen OPS, and OPSs may carry weights (free capacity, load).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/bitset.h"

namespace alvc::graph {

struct SetCoverInstance {
  /// Number of universe elements.
  std::size_t universe_size = 0;
  /// sets[i] = bitset over the universe.
  std::vector<alvc::util::DynamicBitset> sets;
  /// Optional per-set cost (default 1). Lower cost preferred.
  std::vector<double> costs;

  void add_set(alvc::util::DynamicBitset set, double cost = 1.0);
};

/// Greedy weighted set cover: repeatedly pick the set minimising
/// cost / newly-covered. ln(n)-approximation. Returns chosen set indices,
/// or nullopt if some universe element is not coverable.
[[nodiscard]] std::optional<std::vector<std::size_t>> greedy_set_cover(
    const SetCoverInstance& instance);

/// Greedy max-coverage: choose at most k sets maximising covered elements.
[[nodiscard]] std::vector<std::size_t> greedy_max_coverage(const SetCoverInstance& instance,
                                                           std::size_t k);

/// Exact minimum-cardinality set cover via branch and bound (unit costs).
/// Returns nullopt if infeasible or `node_budget` exhausted.
[[nodiscard]] std::optional<std::vector<std::size_t>> exact_set_cover(
    const SetCoverInstance& instance, std::size_t node_budget = 5'000'000);

/// True if the chosen sets cover the whole universe.
[[nodiscard]] bool is_set_cover(const SetCoverInstance& instance,
                                const std::vector<std::size_t>& chosen);

}  // namespace alvc::graph
