// Reusable traversal scratch: struct-of-arrays node state for BFS/DFS.
//
// Every graph traversal needs the same per-vertex state (seen flag,
// predecessor, frontier). Allocating it per call dominates short searches
// — exactly the slice-restricted legs the orchestrator runs thousands of
// times per sweep. The types here keep that state in flat arrays that are
// RESET IN O(1) by bumping a generation stamp instead of clearing, and are
// reused across calls through a thread_local instance.
//
// Reuse contract:
//   * `thread_scratch()` hands out one TraversalScratch per thread; a
//     caller owns it only between its `begin()` and the end of the
//     traversal — no nested traversals on the same thread may both hold it.
//     Algorithms that recurse into other traversals must use a local
//     scratch instead.
//   * VertexSet/VertexIndexMap instances embedded in caller-owned scratch
//     (e.g. the routing layer's slice set) follow the same stamp protocol:
//     `reset(n)` invalidates all prior contents in O(1) and re-sizes the
//     backing array only when the vertex space grew.
//   * Stamps are 32-bit; on wrap-around the backing array is cleared once,
//     so correctness never depends on stamp uniqueness across 2^32 resets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alvc::graph {

inline constexpr std::size_t kScratchNoVertex = static_cast<std::size_t>(-1);

/// Dense membership set over [0, capacity) with O(1) reset via stamping.
/// The CSR routing hot path uses this instead of std::unordered_set: one
/// array load per membership test, no hashing, no rehash jitter.
class VertexSet {
 public:
  /// Empties the set and grows capacity to `capacity` vertices.
  void reset(std::size_t capacity) {
    if (stamp_.size() < capacity) stamp_.resize(capacity, 0);
    if (++current_ == 0) {  // wrap: clear once, stamps restart at 1
      std::fill(stamp_.begin(), stamp_.end(), 0);
      current_ = 1;
    }
    size_ = 0;
  }

  void insert(std::size_t v) {
    if (stamp_[v] != current_) {
      stamp_[v] = current_;
      ++size_;
    }
  }

  [[nodiscard]] bool contains(std::size_t v) const noexcept {
    return v < stamp_.size() && stamp_[v] == current_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t current_ = 0;
  std::size_t size_ = 0;
};

/// Dense vertex -> small-integer map with O(1) reset via stamping; the
/// subgraph re-indexing primitive (replaces per-call std::unordered_map).
/// Values are assigned by the caller; `get` returns kScratchNoVertex for
/// unmapped vertices.
class VertexIndexMap {
 public:
  void reset(std::size_t capacity) {
    if (stamp_.size() < capacity) {
      stamp_.resize(capacity, 0);
      value_.resize(capacity, 0);
    }
    if (++current_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      current_ = 1;
    }
    size_ = 0;
  }

  /// Maps v -> value; counts it only when v was unmapped.
  void put(std::size_t v, std::size_t value) {
    if (stamp_[v] != current_) {
      stamp_[v] = current_;
      ++size_;
    }
    value_[v] = value;
  }

  [[nodiscard]] bool contains(std::size_t v) const noexcept {
    return v < stamp_.size() && stamp_[v] == current_;
  }

  [[nodiscard]] std::size_t get(std::size_t v) const noexcept {
    return contains(v) ? value_[v] : kScratchNoVertex;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::size_t> value_;
  std::uint32_t current_ = 0;
  std::size_t size_ = 0;
};

/// Struct-of-arrays state for one BFS/DFS: stamped seen marks, predecessor
/// array, and a flat FIFO frontier (head index instead of pops). One
/// traversal at a time per instance.
struct TraversalScratch {
  std::vector<std::uint32_t> seen_stamp;
  std::uint32_t stamp = 0;
  std::vector<std::size_t> predecessor;
  std::vector<std::size_t> frontier;

  /// Starts a traversal over `vertex_count` vertices: O(1) apart from
  /// one-time growth of the backing arrays.
  void begin(std::size_t vertex_count) {
    if (seen_stamp.size() < vertex_count) {
      seen_stamp.resize(vertex_count, 0);
      predecessor.resize(vertex_count, kScratchNoVertex);
    }
    if (++stamp == 0) {
      std::fill(seen_stamp.begin(), seen_stamp.end(), 0);
      stamp = 1;
    }
    frontier.clear();
  }

  /// Marks v seen; true when v was not yet seen this traversal.
  bool mark(std::size_t v) {
    if (seen_stamp[v] == stamp) return false;
    seen_stamp[v] = stamp;
    return true;
  }

  [[nodiscard]] bool seen(std::size_t v) const noexcept { return seen_stamp[v] == stamp; }
};

/// The per-thread scratch most traversals share. Owned by the calling
/// algorithm for the duration of one traversal (see reuse contract above).
[[nodiscard]] TraversalScratch& thread_scratch();

}  // namespace alvc::graph
