// Minimum vertex cover algorithms.
//
// Paper §III-C: "using the vertex cover algorithm, we draw a bipartite
// graph that connects all the VMs to ToRs and selects the minimum set of
// vertices", then a greedy "maximum-weighted" pass picks ToRs by incoming/
// outgoing connection count until all VMs are covered.
//
// We provide three solvers on general graphs (greedy max-degree, maximal-
// matching 2-approximation, exact branch-and-bound for small instances) and
// two on bipartite graphs (the paper's one-sided greedy cover, and the exact
// Kőnig construction from a maximum matching). The one-sided cover — select
// the fewest RIGHT vertices so that every non-isolated LEFT vertex has a
// chosen neighbour — is what the AL builder actually needs; it is a set-
// cover instance, and we expose both the paper's degree-greedy rule and an
// exact solver for benchmarking the optimality gap.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/bipartite.h"
#include "graph/graph.h"

namespace alvc::graph {

/// Greedy max-degree vertex cover on a general graph. Returns chosen
/// vertex indices (sorted). No approximation guarantee, good in practice.
[[nodiscard]] std::vector<std::size_t> greedy_vertex_cover(const Graph& g);

/// Classic 2-approximation: take both endpoints of a maximal matching.
[[nodiscard]] std::vector<std::size_t> matching_vertex_cover(const Graph& g);

/// Exact minimum vertex cover by branch and bound. Practical up to a few
/// dozen vertices of nonzero degree; returns nullopt if the search exceeds
/// `node_budget` explored nodes.
[[nodiscard]] std::optional<std::vector<std::size_t>> exact_vertex_cover(
    const Graph& g, std::size_t node_budget = 5'000'000);

/// True if `cover` touches every edge of `g`.
[[nodiscard]] bool is_vertex_cover(const Graph& g, const std::vector<std::size_t>& cover);

/// Exact minimum vertex cover of a bipartite graph via Kőnig's theorem
/// (|min cover| = |max matching|). Returns (left_vertices, right_vertices).
struct BipartiteCover {
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  [[nodiscard]] std::size_t size() const noexcept { return left.size() + right.size(); }
};
[[nodiscard]] BipartiteCover koenig_vertex_cover(const BipartiteGraph& g);

/// The paper's one-sided cover: choose the fewest right vertices (ToRs)
/// such that every left vertex (VM) with at least one edge has a chosen
/// neighbour. Greedy "max-weightage": repeatedly take the right vertex
/// covering the most still-uncovered left vertices; skip right vertices
/// whose left neighbours are all covered already. Ties break toward the
/// lower index for determinism.
[[nodiscard]] std::vector<std::size_t> greedy_one_sided_cover(const BipartiteGraph& g);

/// Exact one-sided cover (set cover over left vertices) by branch and
/// bound; nullopt if `node_budget` exceeded.
[[nodiscard]] std::optional<std::vector<std::size_t>> exact_one_sided_cover(
    const BipartiteGraph& g, std::size_t node_budget = 5'000'000);

/// True if every non-isolated left vertex has a neighbour in `chosen_right`.
[[nodiscard]] bool is_one_sided_cover(const BipartiteGraph& g,
                                      const std::vector<std::size_t>& chosen_right);

}  // namespace alvc::graph
