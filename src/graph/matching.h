// Maximum bipartite matching (Hopcroft–Karp).
//
// Needed for (a) the exact minimum vertex cover on bipartite graphs via
// Kőnig's theorem, giving a ground-truth optimum to compare the paper's
// greedy "max-weightage" heuristic against, and (b) the 2-approximation via
// maximal matching on general graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/bipartite.h"

namespace alvc::graph {

struct Matching {
  /// match_left[l] = matched right vertex or kUnmatched.
  std::vector<std::size_t> match_left;
  /// match_right[r] = matched left vertex or kUnmatched.
  std::vector<std::size_t> match_right;
  std::size_t size = 0;

  static constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
};

/// Hopcroft–Karp: O(E * sqrt(V)).
[[nodiscard]] Matching maximum_bipartite_matching(const BipartiteGraph& g);

}  // namespace alvc::graph
