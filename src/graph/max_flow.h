// Maximum flow (Dinic's algorithm).
//
// Used by bandwidth-aware admission: a chain asking for B Gbps is feasible
// inside its slice only if the slice's switch subgraph carries a flow of at
// least B between the chain's ingress and egress, given per-link capacities
// and what earlier chains already reserved.
#pragma once

#include <cstddef>
#include <vector>

namespace alvc::graph {

/// Directed flow network with residual bookkeeping. Add an undirected
/// capacity with two add_edge calls (one per direction).
///
/// Arc indices per vertex live in a CSR layout (flat arc array + vertex
/// offsets) rebuilt lazily before each max_flow run; the level-graph BFS
/// and blocking-flow DFS walk contiguous slices instead of per-vertex
/// vectors. Arc-index order within a slice matches insertion order, so
/// augmenting paths (and the final per-arc flow split) are identical to the
/// adjacency-list implementation's.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t vertex_count);

  [[nodiscard]] std::size_t vertex_count() const noexcept { return vertex_count_; }

  /// Adds a directed arc u->v with `capacity`; returns the arc index.
  /// A reverse residual arc with zero capacity is created automatically.
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);

  /// Max flow from s to t (Dinic, O(V^2 E); tiny on slice-sized graphs).
  /// Resets previous flow before computing.
  double max_flow(std::size_t s, std::size_t t);

  /// Flow currently assigned to arc `e` (after max_flow).
  [[nodiscard]] double flow_on(std::size_t e) const;
  /// Capacity of arc `e`.
  [[nodiscard]] double capacity_of(std::size_t e) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t reverse;  // index of the paired residual arc
    double capacity;
    double flow;
  };

  void ensure_csr();
  bool bfs_layers(std::size_t s, std::size_t t);
  double dfs_push(std::size_t v, std::size_t t, double pushed);

  std::size_t vertex_count_;
  std::vector<Arc> arcs_;
  // CSR over arc indices: vertex v's arcs are arc_index_[offsets_[v] ..
  // offsets_[v+1]). Stale whenever add_edge ran since the last build.
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> arc_index_;
  bool csr_stale_ = true;
  std::vector<int> level_;
  std::vector<std::size_t> next_arc_;  // cursor into [offsets_[v], offsets_[v+1])
  std::vector<std::size_t> frontier_;  // flat BFS queue, reused across layers
};

}  // namespace alvc::graph
