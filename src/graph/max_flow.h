// Maximum flow (Dinic's algorithm).
//
// Used by bandwidth-aware admission: a chain asking for B Gbps is feasible
// inside its slice only if the slice's switch subgraph carries a flow of at
// least B between the chain's ingress and egress, given per-link capacities
// and what earlier chains already reserved.
#pragma once

#include <cstddef>
#include <vector>

namespace alvc::graph {

/// Directed flow network with residual bookkeeping. Add an undirected
/// capacity with two add_edge calls (one per direction).
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t vertex_count);

  [[nodiscard]] std::size_t vertex_count() const noexcept { return adjacency_.size(); }

  /// Adds a directed arc u->v with `capacity`; returns the arc index.
  /// A reverse residual arc with zero capacity is created automatically.
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);

  /// Max flow from s to t (Dinic, O(V^2 E); tiny on slice-sized graphs).
  /// Resets previous flow before computing.
  double max_flow(std::size_t s, std::size_t t);

  /// Flow currently assigned to arc `e` (after max_flow).
  [[nodiscard]] double flow_on(std::size_t e) const;
  /// Capacity of arc `e`.
  [[nodiscard]] double capacity_of(std::size_t e) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t reverse;  // index of the paired residual arc
    double capacity;
    double flow;
  };

  bool bfs_layers(std::size_t s, std::size_t t);
  double dfs_push(std::size_t v, std::size_t t, double pushed);

  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> adjacency_;  // arc indices per vertex
  std::vector<int> level_;
  std::vector<std::size_t> next_arc_;
};

}  // namespace alvc::graph
