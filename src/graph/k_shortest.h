// Yen's algorithm: k loopless shortest paths.
//
// Used by load-balanced chain routing: instead of always taking THE
// shortest slice-internal path for a leg, enumerate the k shortest and pick
// the one with the most bandwidth headroom, spreading chains across the AL.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace alvc::graph {

/// Up to `k` loopless paths from `source` to `target`, ordered by hop count
/// (BFS metric), ties broken deterministically. Vertices where
/// filter(v) == false are not traversed (source exempt). Returns fewer than
/// k when the graph has fewer distinct loopless paths.
[[nodiscard]] std::vector<std::vector<std::size_t>> k_shortest_paths(
    const Graph& g, std::size_t source, std::size_t target, std::size_t k,
    const VertexFilter& filter = nullptr);

}  // namespace alvc::graph
