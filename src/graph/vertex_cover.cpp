#include "graph/vertex_cover.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/matching.h"
#include "util/bitset.h"

namespace alvc::graph {

using alvc::util::DynamicBitset;

std::vector<std::size_t> greedy_vertex_cover(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> uncovered_degree(n, 0);
  DynamicBitset edge_covered(g.edge_count());
  for (std::size_t v = 0; v < n; ++v) uncovered_degree[v] = g.degree(v);

  std::vector<std::size_t> cover;
  std::size_t edges_left = g.edge_count();
  // Self-loops count once in adjacency for undirected graphs; treat any edge
  // as covered when either endpoint is picked.
  while (edges_left > 0) {
    // Pick the vertex with the most uncovered incident edges.
    std::size_t best = n;
    std::size_t best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (uncovered_degree[v] > best_deg) {
        best = v;
        best_deg = uncovered_degree[v];
      }
    }
    if (best == n) break;  // remaining edges are self-loops already handled
    cover.push_back(best);
    for (const auto& nb : g.neighbors(best)) {
      if (edge_covered.test(nb.edge)) continue;
      edge_covered.set(nb.edge);
      --edges_left;
      if (uncovered_degree[best] > 0) --uncovered_degree[best];
      if (nb.vertex != best && uncovered_degree[nb.vertex] > 0) --uncovered_degree[nb.vertex];
    }
    uncovered_degree[best] = 0;
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

std::vector<std::size_t> matching_vertex_cover(const Graph& g) {
  DynamicBitset in_cover(g.vertex_count());
  for (const Edge& e : g.edges()) {
    if (!in_cover.test(e.from) && !in_cover.test(e.to)) {
      in_cover.set(e.from);
      in_cover.set(e.to);
    }
  }
  std::vector<std::size_t> cover;
  for (std::size_t v = in_cover.find_first(); v < in_cover.size(); v = in_cover.find_next(v)) {
    cover.push_back(v);
  }
  return cover;
}

bool is_vertex_cover(const Graph& g, const std::vector<std::size_t>& cover) {
  DynamicBitset chosen(g.vertex_count());
  for (std::size_t v : cover) {
    if (v >= g.vertex_count()) return false;
    chosen.set(v);
  }
  for (const Edge& e : g.edges()) {
    if (!chosen.test(e.from) && !chosen.test(e.to)) return false;
  }
  return true;
}

namespace {

/// Branch-and-bound state for exact vertex cover on a general graph.
/// Works on a residual edge list; branches on the endpoint of a remaining
/// edge (either `from` is in the cover, or every neighbour of `from` is).
class ExactVcSolver {
 public:
  ExactVcSolver(const Graph& g, std::size_t node_budget)
      : graph_(g), node_budget_(node_budget), in_cover_(g.vertex_count()), removed_(g.vertex_count()) {}

  std::optional<std::vector<std::size_t>> solve() {
    // Upper bound from the greedy solution.
    best_ = greedy_vertex_cover(graph_);
    std::vector<std::size_t> current;
    if (!branch(current)) return std::nullopt;  // budget blown
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  // Returns false if the node budget was exhausted.
  bool branch(std::vector<std::size_t>& current) {
    if (++explored_ > node_budget_) return false;
    if (current.size() >= best_.size()) return true;  // bound

    // Find an uncovered edge.
    const Edge* pick = nullptr;
    std::size_t pick_deg = 0;
    for (const Edge& e : graph_.edges()) {
      if (e.from == e.to) continue;  // self-loop: must take the vertex
      if (in_cover_.test(e.from) || in_cover_.test(e.to)) continue;
      // Branch on the edge whose endpoints have max residual degree to
      // shrink the tree.
      const std::size_t d = residual_degree(e.from) + residual_degree(e.to);
      if (pick == nullptr || d > pick_deg) {
        pick = &e;
        pick_deg = d;
      }
    }
    // Handle self-loops: vertex must be in cover.
    for (const Edge& e : graph_.edges()) {
      if (e.from == e.to && !in_cover_.test(e.from)) {
        in_cover_.set(e.from);
        current.push_back(e.from);
        const bool ok = branch(current);
        current.pop_back();
        in_cover_.reset(e.from);
        return ok;
      }
    }
    if (pick == nullptr) {
      // All edges covered: record improvement.
      if (current.size() < best_.size()) best_ = current;
      return true;
    }

    // Branch 1: take `from`.
    in_cover_.set(pick->from);
    current.push_back(pick->from);
    bool ok = branch(current);
    current.pop_back();
    in_cover_.reset(pick->from);
    if (!ok) return false;

    // Branch 2: exclude `from`, so take every neighbour of `from`.
    std::vector<std::size_t> added;
    for (const auto& nb : graph_.neighbors(pick->from)) {
      if (!in_cover_.test(nb.vertex)) {
        in_cover_.set(nb.vertex);
        added.push_back(nb.vertex);
        current.push_back(nb.vertex);
      }
    }
    ok = branch(current);
    for (std::size_t v : added) {
      in_cover_.reset(v);
      current.pop_back();
    }
    return ok;
  }

  std::size_t residual_degree(std::size_t v) const {
    std::size_t d = 0;
    for (const auto& nb : graph_.neighbors(v)) {
      if (!in_cover_.test(nb.vertex)) ++d;
    }
    return d;
  }

  const Graph& graph_;
  std::size_t node_budget_;
  std::size_t explored_ = 0;
  std::vector<std::size_t> best_;
  DynamicBitset in_cover_;
  DynamicBitset removed_;
};

}  // namespace

std::optional<std::vector<std::size_t>> exact_vertex_cover(const Graph& g,
                                                           std::size_t node_budget) {
  ExactVcSolver solver(g, node_budget);
  return solver.solve();
}

BipartiteCover koenig_vertex_cover(const BipartiteGraph& g) {
  const Matching m = maximum_bipartite_matching(g);
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();

  // Kőnig: let Z = free left vertices plus everything reachable by
  // alternating paths (unmatched edge left->right, matched edge
  // right->left). Cover = (L \ Z) ∪ (R ∩ Z).
  DynamicBitset left_in_z(nl);
  DynamicBitset right_in_z(nr);
  std::queue<std::size_t> queue;  // left vertices to expand
  for (std::size_t l = 0; l < nl; ++l) {
    if (m.match_left[l] == Matching::kUnmatched) {
      left_in_z.set(l);
      queue.push(l);
    }
  }
  while (!queue.empty()) {
    const std::size_t l = queue.front();
    queue.pop();
    for (std::size_t r : g.left_neighbors(l)) {
      if (m.match_left[l] == r) continue;  // only unmatched edges leftwards
      if (right_in_z.test(r)) continue;
      right_in_z.set(r);
      const std::size_t back = m.match_right[r];
      if (back != Matching::kUnmatched && !left_in_z.test(back)) {
        left_in_z.set(back);
        queue.push(back);
      }
    }
  }

  BipartiteCover cover;
  for (std::size_t l = 0; l < nl; ++l) {
    if (!left_in_z.test(l) && g.left_degree(l) > 0) cover.left.push_back(l);
  }
  for (std::size_t r = 0; r < nr; ++r) {
    if (right_in_z.test(r)) cover.right.push_back(r);
  }
  return cover;
}

std::vector<std::size_t> greedy_one_sided_cover(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  DynamicBitset covered(nl);
  // Isolated left vertices are vacuously covered.
  std::size_t uncovered = 0;
  for (std::size_t l = 0; l < nl; ++l) {
    if (g.left_degree(l) == 0) {
      covered.set(l);
    } else {
      ++uncovered;
    }
  }

  // Incremental gains: gain[r] = number of edges from r to uncovered left
  // vertices, maintained as vertices get covered, so each round is an O(nr)
  // argmax scan instead of re-walking every right neighbor list (O(E)).
  // Initially every neighbor of a right vertex is uncovered (it has degree
  // >= 1), so gain starts at the full degree; covering a left vertex
  // decrements once per incident edge, which reproduces the old per-edge
  // counting exactly even with parallel edges.
  std::vector<std::size_t> gain(nr);
  for (std::size_t r = 0; r < nr; ++r) gain[r] = g.right_degree(r);

  std::vector<std::size_t> chosen;
  while (uncovered > 0) {
    // "Max-weightage": right vertex covering the most uncovered VMs wins;
    // the strict > keeps the legacy lowest-index tie-break.
    std::size_t best = nr;
    std::size_t best_gain = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      if (gain[r] > best_gain) {
        best = r;
        best_gain = gain[r];
      }
    }
    if (best == nr) break;  // unreachable if every non-isolated VM has an edge
    chosen.push_back(best);
    for (std::size_t l : g.right_neighbors(best)) {
      if (!covered.test(l)) {
        covered.set(l);
        --uncovered;
        for (std::size_t r : g.left_neighbors(l)) --gain[r];
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

bool is_one_sided_cover(const BipartiteGraph& g, const std::vector<std::size_t>& chosen_right) {
  DynamicBitset chosen(g.right_count());
  for (std::size_t r : chosen_right) {
    if (r >= g.right_count()) return false;
    chosen.set(r);
  }
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    const auto neighbors = g.left_neighbors(l);
    if (neighbors.empty()) continue;
    bool hit = false;
    for (std::size_t r : neighbors) {
      if (chosen.test(r)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

namespace {

/// Exact one-sided cover = minimum set cover where sets are right vertices
/// and the universe is the non-isolated left vertices. Branch and bound on
/// the least-covered left vertex.
class ExactCoverSolver {
 public:
  ExactCoverSolver(const BipartiteGraph& g, std::size_t node_budget)
      : graph_(g), node_budget_(node_budget) {}

  std::optional<std::vector<std::size_t>> solve() {
    best_ = greedy_one_sided_cover(graph_);
    // Feasibility: a non-isolated left vertex always has >=1 neighbour, so
    // the greedy result is a valid upper bound.
    DynamicBitset covered(graph_.left_count());
    for (std::size_t l = 0; l < graph_.left_count(); ++l) {
      if (graph_.left_degree(l) == 0) covered.set(l);
    }
    std::vector<std::size_t> current;
    if (!branch(covered, current)) return std::nullopt;
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  bool branch(DynamicBitset& covered, std::vector<std::size_t>& current) {
    if (++explored_ > node_budget_) return false;
    if (current.size() >= best_.size()) return true;  // bound
    // Find an uncovered left vertex; choose the one with the fewest
    // candidate right vertices (fail-first).
    std::size_t pick = covered.size();
    std::size_t pick_options = static_cast<std::size_t>(-1);
    for (std::size_t l = 0; l < covered.size(); ++l) {
      if (covered.test(l)) continue;
      const std::size_t options = graph_.left_degree(l);
      if (options < pick_options) {
        pick = l;
        pick_options = options;
      }
    }
    if (pick == covered.size()) {
      best_ = current;  // complete cover, strictly better than bound
      return true;
    }
    // Branch over each right vertex that could cover `pick`.
    for (std::size_t r : graph_.left_neighbors(pick)) {
      std::vector<std::size_t> newly;
      for (std::size_t l : graph_.right_neighbors(r)) {
        if (!covered.test(l)) {
          covered.set(l);
          newly.push_back(l);
        }
      }
      current.push_back(r);
      const bool ok = branch(covered, current);
      current.pop_back();
      for (std::size_t l : newly) covered.reset(l);
      if (!ok) return false;
    }
    return true;
  }

  const BipartiteGraph& graph_;
  std::size_t node_budget_;
  std::size_t explored_ = 0;
  std::vector<std::size_t> best_;
};

}  // namespace

std::optional<std::vector<std::size_t>> exact_one_sided_cover(const BipartiteGraph& g,
                                                              std::size_t node_budget) {
  ExactCoverSolver solver(g, node_budget);
  return solver.solve();
}

}  // namespace alvc::graph
