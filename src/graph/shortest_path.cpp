#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace alvc::graph {

PathResult bfs(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("bfs: source out of range");
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;
  const CsrView csr = g.csr();
  // Flat FIFO frontier: `head` walks forward instead of popping, so the
  // vector doubles as the visit log and never shuffles memory.
  TraversalScratch& scratch = thread_scratch();
  scratch.begin(g.vertex_count());
  scratch.frontier.push_back(source);
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const std::size_t v = scratch.frontier[head];
    for (const auto& nb : csr.neighbors(v)) {
      if (result.distance[nb.vertex] != kUnreachable) continue;
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      result.distance[nb.vertex] = result.distance[v] + 1;
      result.predecessor[nb.vertex] = v;
      scratch.frontier.push_back(nb.vertex);
    }
  }
  return result;
}

PathResult dijkstra(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("dijkstra: source out of range");
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;
  const CsrView csr = g.csr();

  using Entry = std::pair<double, std::size_t>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;  // stale entry
    for (const auto& nb : csr.neighbors(v)) {
      if (nb.weight < 0) throw std::invalid_argument("dijkstra: negative edge weight");
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      const double cand = dist + nb.weight;
      if (cand < result.distance[nb.vertex]) {
        result.distance[nb.vertex] = cand;
        result.predecessor[nb.vertex] = v;
        heap.emplace(cand, nb.vertex);
      }
    }
  }
  return result;
}

std::optional<std::vector<std::size_t>> bfs_path_to(const Graph& g, std::size_t source,
                                                    std::size_t target,
                                                    const VertexSet& allowed) {
  if (source >= g.vertex_count()) throw std::out_of_range("bfs_path_to: source out of range");
  if (target >= g.vertex_count()) throw std::out_of_range("bfs_path_to: target out of range");
  const CsrView csr = g.csr();
  TraversalScratch& scratch = thread_scratch();
  scratch.begin(g.vertex_count());
  scratch.mark(source);
  scratch.predecessor[source] = kNoVertex;
  scratch.frontier.push_back(source);
  bool found = source == target;
  for (std::size_t head = 0; !found && head < scratch.frontier.size(); ++head) {
    const std::size_t v = scratch.frontier[head];
    for (const auto& nb : csr.neighbors(v)) {
      if (scratch.seen(nb.vertex)) continue;
      // Same exemption the std::function filter applies: the source is
      // traversable even when outside the allowed set.
      if (nb.vertex != source && !allowed.contains(nb.vertex)) continue;
      scratch.mark(nb.vertex);
      scratch.predecessor[nb.vertex] = v;
      if (nb.vertex == target) {
        // Predecessors are fixed at discovery, so the path is already
        // complete — the rest of this BFS level cannot change it.
        found = true;
        break;
      }
      scratch.frontier.push_back(nb.vertex);
    }
  }
  if (!found) return std::nullopt;
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != kNoVertex; v = scratch.predecessor[v]) {
    path.push_back(v);
    if (path.size() > g.vertex_count()) {
      throw std::logic_error("bfs_path_to: predecessor cycle");
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<std::size_t>> extract_path(const PathResult& result,
                                                     std::size_t target) {
  if (target >= result.distance.size()) throw std::out_of_range("extract_path: target");
  if (result.distance[target] == kUnreachable) return std::nullopt;
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != kNoVertex; v = result.predecessor[v]) {
    path.push_back(v);
    if (path.size() > result.distance.size()) {
      throw std::logic_error("extract_path: predecessor cycle");
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace alvc::graph
