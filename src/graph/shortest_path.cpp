#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace alvc::graph {

PathResult bfs(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("bfs: source out of range");
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;
  std::queue<std::size_t> queue;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const auto& nb : g.neighbors(v)) {
      if (result.distance[nb.vertex] != kUnreachable) continue;
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      result.distance[nb.vertex] = result.distance[v] + 1;
      result.predecessor[nb.vertex] = v;
      queue.push(nb.vertex);
    }
  }
  return result;
}

PathResult dijkstra(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("dijkstra: source out of range");
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;

  using Entry = std::pair<double, std::size_t>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;  // stale entry
    for (const auto& nb : g.neighbors(v)) {
      if (nb.weight < 0) throw std::invalid_argument("dijkstra: negative edge weight");
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      const double cand = dist + nb.weight;
      if (cand < result.distance[nb.vertex]) {
        result.distance[nb.vertex] = cand;
        result.predecessor[nb.vertex] = v;
        heap.emplace(cand, nb.vertex);
      }
    }
  }
  return result;
}

std::optional<std::vector<std::size_t>> extract_path(const PathResult& result,
                                                     std::size_t target) {
  if (target >= result.distance.size()) throw std::out_of_range("extract_path: target");
  if (result.distance[target] == kUnreachable) return std::nullopt;
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != kNoVertex; v = result.predecessor[v]) {
    path.push_back(v);
    if (path.size() > result.distance.size()) {
      throw std::logic_error("extract_path: predecessor cycle");
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace alvc::graph
