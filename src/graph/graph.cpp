#include "graph/graph.h"

#include <stdexcept>

namespace alvc::graph {

std::size_t Graph::add_vertex() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

std::size_t Graph::add_edge(std::size_t from, std::size_t to, double weight) {
  check_vertex(from);
  check_vertex(to);
  const std::size_t e = edges_.size();
  edges_.push_back(Edge{from, to, weight});
  adjacency_[from].push_back(Neighbor{to, e, weight});
  if (kind_ == Kind::kUndirected && from != to) {
    adjacency_[to].push_back(Neighbor{from, e, weight});
  }
  return e;
}

std::span<const Neighbor> Graph::neighbors(std::size_t v) const {
  check_vertex(v);
  return adjacency_[v];
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  check_vertex(a);
  check_vertex(b);
  const auto& smaller = adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const std::size_t target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  for (const auto& n : smaller) {
    if (n.vertex == target) return true;
  }
  // Directed graphs store the edge only on `from`, so check the other side too.
  if (kind_ == Kind::kDirected) {
    for (const auto& n : adjacency_[a]) {
      if (n.vertex == b) return true;
    }
    return false;
  }
  return false;
}

void Graph::check_vertex(std::size_t v) const {
  if (v >= adjacency_.size()) throw std::out_of_range("Graph vertex out of range");
}

}  // namespace alvc::graph
