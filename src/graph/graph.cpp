#include "graph/graph.h"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "graph/scratch.h"
#include "util/lock_rank.h"

namespace alvc::graph {

std::uint64_t fingerprint_mix(std::uint64_t fp, std::uint64_t value) noexcept {
  // FNV-1a over the value's eight octets; byte-wise so every bit of the
  // input diffuses through the 64-bit state.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    fp ^= (value >> shift) & 0xffULL;
    fp *= kPrime;
  }
  return fp;
}

std::uint64_t path_fingerprint(std::span<const std::size_t> vertices) noexcept {
  std::uint64_t fp = kFingerprintSeed;
  fp = fingerprint_mix(fp, vertices.size());
  for (std::size_t v : vertices) fp = fingerprint_mix(fp, v);
  return fp;
}

TraversalScratch& thread_scratch() {
  thread_local TraversalScratch scratch;
  return scratch;
}

Graph::Graph(const Graph& other)
    : kind_(other.kind_), vertex_count_(other.vertex_count_), edges_(other.edges_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  vertex_count_ = other.vertex_count_;
  edges_ = other.edges_;
  ++epoch_;  // cold cache: the old CSR arrays describe the old edge list
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : kind_(other.kind_), vertex_count_(other.vertex_count_), edges_(std::move(other.edges_)) {
  // Move transfers a warm cache (no readers may race a move by contract).
  ALVC_LOCK_RANK(alvc::util::lock_rank::kGraphCsr, "graph.csr");
  const std::lock_guard<std::mutex> lock(other.csr_mutex_);
  csr_offsets_ = std::move(other.csr_offsets_);
  csr_adjacency_ = std::move(other.csr_adjacency_);
  if (other.csr_built_epoch_.load(std::memory_order_relaxed) == other.epoch_) {
    epoch_ = other.epoch_;
    csr_built_epoch_.store(epoch_, std::memory_order_release);
  }
  other.csr_built_epoch_.store(0, std::memory_order_relaxed);
  other.vertex_count_ = 0;
  ++other.epoch_;
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  kind_ = other.kind_;
  vertex_count_ = other.vertex_count_;
  edges_ = std::move(other.edges_);
  {
    // One rank scope for the pair: scoped_lock acquires both atomically.
    ALVC_LOCK_RANK(alvc::util::lock_rank::kGraphCsr, "graph.csr");
    std::scoped_lock lock(csr_mutex_, other.csr_mutex_);
    csr_offsets_ = std::move(other.csr_offsets_);
    csr_adjacency_ = std::move(other.csr_adjacency_);
  }
  if (other.csr_built_epoch_.load(std::memory_order_relaxed) == other.epoch_) {
    epoch_ = other.epoch_;
    csr_built_epoch_.store(epoch_, std::memory_order_release);
  } else {
    ++epoch_;
    csr_built_epoch_.store(0, std::memory_order_relaxed);
  }
  other.csr_built_epoch_.store(0, std::memory_order_relaxed);
  other.vertex_count_ = 0;
  ++other.epoch_;
  return *this;
}

std::size_t Graph::add_vertex() {
  ++epoch_;
  return vertex_count_++;
}

std::size_t Graph::add_edge(std::size_t from, std::size_t to, double weight) {
  check_vertex(from);
  check_vertex(to);
  const std::size_t e = edges_.size();
  edges_.push_back(Edge{from, to, weight});
  ++epoch_;
  return e;
}

void Graph::build_csr() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kGraphCsr, "graph.csr");
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_built_epoch_.load(std::memory_order_relaxed) == epoch_) return;
  // Counting sort over the edge list. Walking edges in insertion order
  // fills each vertex's slice in that same order, reproducing the old
  // per-vertex push_back sequence exactly.
  csr_offsets_.assign(vertex_count_ + 1, 0);
  for (const Edge& e : edges_) {
    ++csr_offsets_[e.from + 1];
    if (kind_ == Kind::kUndirected && e.from != e.to) ++csr_offsets_[e.to + 1];
  }
  for (std::size_t v = 0; v < vertex_count_; ++v) csr_offsets_[v + 1] += csr_offsets_[v];
  csr_adjacency_.resize(csr_offsets_[vertex_count_]);
  std::vector<std::size_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    csr_adjacency_[cursor[edge.from]++] = Neighbor{edge.to, e, edge.weight};
    if (kind_ == Kind::kUndirected && edge.from != edge.to) {
      csr_adjacency_[cursor[edge.to]++] = Neighbor{edge.from, e, edge.weight};
    }
  }
  csr_built_epoch_.store(epoch_, std::memory_order_release);
}

void Graph::ensure_csr() const {
  if (csr_built_epoch_.load(std::memory_order_acquire) != epoch_) build_csr();
}

// Unchecked reads of the guarded arrays: the acquire load in ensure_csr
// pairs with build_csr's release store, and the documented protocol (no
// concurrent mutation while const readers are active) keeps them stable.
// The analysis cannot model publication-then-quiescence.
std::span<const Neighbor> Graph::neighbors(std::size_t v) const ALVC_NO_THREAD_SAFETY_ANALYSIS {
  check_vertex(v);
  ensure_csr();
  return std::span<const Neighbor>(csr_adjacency_.data() + csr_offsets_[v],
                                   csr_offsets_[v + 1] - csr_offsets_[v]);
}

CsrView Graph::csr() const ALVC_NO_THREAD_SAFETY_ANALYSIS {
  ensure_csr();
  return CsrView{.offsets = csr_offsets_, .adjacency = csr_adjacency_};
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  check_vertex(a);
  check_vertex(b);
  const auto adj_a = neighbors(a);
  const auto adj_b = neighbors(b);
  const auto& smaller = adj_a.size() <= adj_b.size() ? adj_a : adj_b;
  const std::size_t target = adj_a.size() <= adj_b.size() ? b : a;
  for (const auto& n : smaller) {
    if (n.vertex == target) return true;
  }
  // Directed graphs store the edge only on `from`, so check the other side too.
  if (kind_ == Kind::kDirected) {
    for (const auto& n : adj_a) {
      if (n.vertex == b) return true;
    }
    return false;
  }
  return false;
}

void Graph::check_vertex(std::size_t v) const {
  if (v >= vertex_count_) throw std::out_of_range("Graph vertex out of range");
}

}  // namespace alvc::graph
