#include "graph/graph.h"

#include <stdexcept>

namespace alvc::graph {

std::uint64_t fingerprint_mix(std::uint64_t fp, std::uint64_t value) noexcept {
  // FNV-1a over the value's eight octets; byte-wise so every bit of the
  // input diffuses through the 64-bit state.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    fp ^= (value >> shift) & 0xffULL;
    fp *= kPrime;
  }
  return fp;
}

std::uint64_t path_fingerprint(std::span<const std::size_t> vertices) noexcept {
  std::uint64_t fp = kFingerprintSeed;
  fp = fingerprint_mix(fp, vertices.size());
  for (std::size_t v : vertices) fp = fingerprint_mix(fp, v);
  return fp;
}

std::size_t Graph::add_vertex() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

std::size_t Graph::add_edge(std::size_t from, std::size_t to, double weight) {
  check_vertex(from);
  check_vertex(to);
  const std::size_t e = edges_.size();
  edges_.push_back(Edge{from, to, weight});
  adjacency_[from].push_back(Neighbor{to, e, weight});
  if (kind_ == Kind::kUndirected && from != to) {
    adjacency_[to].push_back(Neighbor{from, e, weight});
  }
  return e;
}

std::span<const Neighbor> Graph::neighbors(std::size_t v) const {
  check_vertex(v);
  return adjacency_[v];
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  check_vertex(a);
  check_vertex(b);
  const auto& smaller = adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const std::size_t target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  for (const auto& n : smaller) {
    if (n.vertex == target) return true;
  }
  // Directed graphs store the edge only on `from`, so check the other side too.
  if (kind_ == Kind::kDirected) {
    for (const auto& n : adjacency_[a]) {
      if (n.vertex == b) return true;
    }
    return false;
  }
  return false;
}

void Graph::check_vertex(std::size_t v) const {
  if (v >= adjacency_.size()) throw std::out_of_range("Graph vertex out of range");
}

}  // namespace alvc::graph
