#include "graph/set_cover.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace alvc::graph {

using alvc::util::DynamicBitset;

void SetCoverInstance::add_set(DynamicBitset set, double cost) {
  if (set.size() != universe_size) {
    throw std::invalid_argument("SetCoverInstance: set size != universe size");
  }
  if (cost <= 0) throw std::invalid_argument("SetCoverInstance: cost must be positive");
  sets.push_back(std::move(set));
  costs.push_back(cost);
}

std::optional<std::vector<std::size_t>> greedy_set_cover(const SetCoverInstance& instance) {
  DynamicBitset covered(instance.universe_size);
  std::vector<std::size_t> chosen;
  std::size_t remaining = instance.universe_size;
  while (remaining > 0) {
    std::size_t best = instance.sets.size();
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < instance.sets.size(); ++i) {
      const std::size_t gain = instance.sets[i].count_andnot(covered);
      if (gain == 0) continue;
      const double ratio = instance.costs[i] / static_cast<double>(gain);
      if (ratio < best_ratio || (ratio == best_ratio && gain > best_gain)) {
        best = i;
        best_ratio = ratio;
        best_gain = gain;
      }
    }
    if (best == instance.sets.size()) return std::nullopt;  // uncoverable element
    chosen.push_back(best);
    covered |= instance.sets[best];
    remaining = instance.universe_size - covered.count();
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<std::size_t> greedy_max_coverage(const SetCoverInstance& instance, std::size_t k) {
  DynamicBitset covered(instance.universe_size);
  std::vector<std::size_t> chosen;
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best = instance.sets.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < instance.sets.size(); ++i) {
      const std::size_t gain = instance.sets[i].count_andnot(covered);
      if (gain > best_gain) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == instance.sets.size()) break;  // nothing left to gain
    chosen.push_back(best);
    covered |= instance.sets[best];
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

bool is_set_cover(const SetCoverInstance& instance, const std::vector<std::size_t>& chosen) {
  DynamicBitset covered(instance.universe_size);
  for (std::size_t i : chosen) {
    if (i >= instance.sets.size()) return false;
    covered |= instance.sets[i];
  }
  return covered.all();
}

namespace {

class ExactSetCoverSolver {
 public:
  ExactSetCoverSolver(const SetCoverInstance& instance, std::size_t node_budget)
      : instance_(instance), node_budget_(node_budget) {}

  std::optional<std::vector<std::size_t>> solve() {
    auto greedy = greedy_set_cover(instance_);
    if (!greedy) return std::nullopt;  // infeasible
    best_ = *greedy;
    DynamicBitset covered(instance_.universe_size);
    std::vector<std::size_t> current;
    budget_ok_ = true;
    branch(covered, current);
    if (!budget_ok_) return std::nullopt;
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  void branch(DynamicBitset& covered, std::vector<std::size_t>& current) {
    if (!budget_ok_ || ++explored_ > node_budget_) {
      budget_ok_ = false;
      return;
    }
    if (current.size() >= best_.size()) return;
    // First uncovered element with the fewest covering sets.
    std::size_t pick = instance_.universe_size;
    std::size_t pick_options = static_cast<std::size_t>(-1);
    for (std::size_t e = 0; e < instance_.universe_size; ++e) {
      if (covered.test(e)) continue;
      std::size_t options = 0;
      for (const auto& s : instance_.sets) {
        if (s.test(e)) ++options;
      }
      if (options < pick_options) {
        pick = e;
        pick_options = options;
      }
    }
    if (pick == instance_.universe_size) {
      best_ = current;
      return;
    }
    for (std::size_t i = 0; i < instance_.sets.size(); ++i) {
      if (!instance_.sets[i].test(pick)) continue;
      DynamicBitset saved = covered;
      covered |= instance_.sets[i];
      current.push_back(i);
      branch(covered, current);
      current.pop_back();
      covered = std::move(saved);
      if (!budget_ok_) return;
    }
  }

  const SetCoverInstance& instance_;
  std::size_t node_budget_;
  std::size_t explored_ = 0;
  bool budget_ok_ = true;
  std::vector<std::size_t> best_;
};

}  // namespace

std::optional<std::vector<std::size_t>> exact_set_cover(const SetCoverInstance& instance,
                                                        std::size_t node_budget) {
  ExactSetCoverSolver solver(instance, node_budget);
  return solver.solve();
}

}  // namespace alvc::graph
