// Articulation points (cut vertices) via Tarjan's low-link algorithm.
//
// Resilience diagnostic: an OPS that is an articulation point of its
// cluster's induced subgraph is a single point of failure — losing it
// disconnects the AL. ABL3 reports how exposed each deployment is.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace alvc::graph {

/// Articulation points of `g`, ascending. Handles disconnected graphs
/// (each component analysed independently); parallel edges and self loops
/// are tolerated.
[[nodiscard]] std::vector<std::size_t> articulation_points(const Graph& g);

/// Articulation points of the subgraph induced by `members` (indices into
/// g's vertex set), reported as vertex ids of g, ascending.
[[nodiscard]] std::vector<std::size_t> articulation_points_in_subgraph(
    const Graph& g, std::span<const std::size_t> members);

}  // namespace alvc::graph
