// General-purpose weighted graph (adjacency list).
//
// Used for the physical network (ToR/OPS links) and any derived logical
// topologies. Vertices are dense indices [0, vertex_count); edges are stored
// once and exposed per-endpoint. Supports directed and undirected modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace alvc::graph {

/// FNV-1a offset basis; the seed every fingerprint chain starts from.
inline constexpr std::uint64_t kFingerprintSeed = 14695981039346656037ULL;

/// Folds one 64-bit value into a running fingerprint (order-sensitive:
/// mixing [a, b] and [b, a] yields different results).
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t fp, std::uint64_t value) noexcept;

/// 64-bit fingerprint of a vertex sequence. Two paths fingerprint equal
/// only if they visit the same vertices in the same order (modulo hash
/// collisions); used to detect cached-path corruption cheaply.
[[nodiscard]] std::uint64_t path_fingerprint(std::span<const std::size_t> vertices) noexcept;

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  double weight = 1.0;
};

/// Half-edge as seen from a vertex.
struct Neighbor {
  std::size_t vertex = 0;
  std::size_t edge = 0;  // index into edges()
  double weight = 1.0;
};

class Graph {
 public:
  enum class Kind { kUndirected, kDirected };

  explicit Graph(std::size_t vertex_count = 0, Kind kind = Kind::kUndirected)
      : kind_(kind), adjacency_(vertex_count) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t vertex_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds a vertex; returns its index.
  std::size_t add_vertex();

  /// Adds an edge; returns its index. Undirected edges appear in both
  /// endpoints' adjacency. Throws on out-of-range endpoints.
  std::size_t add_edge(std::size_t from, std::size_t to, double weight = 1.0);

  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t v) const;
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] const Edge& edge(std::size_t e) const { return edges_.at(e); }
  [[nodiscard]] std::size_t degree(std::size_t v) const { return neighbors(v).size(); }

  /// True if some edge directly connects a and b (O(min degree)).
  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const;

 private:
  void check_vertex(std::size_t v) const;

  Kind kind_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace alvc::graph
