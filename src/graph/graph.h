// General-purpose weighted graph on a flat compressed-sparse-row core.
//
// Used for the physical network (ToR/OPS links) and any derived logical
// topologies. Vertices are dense indices [0, vertex_count); edges are stored
// once in insertion order and exposed per-endpoint. Supports directed and
// undirected modes.
//
// Representation: the edge list is the source of truth; adjacency is a CSR
// view over it — one dense half-edge array (`Neighbor` slots) plus a
// vertex-offset array — rebuilt lazily whenever the mutation epoch moves.
// The CSR fill walks edges in insertion order, so each vertex's neighbor
// order is EXACTLY the order the old adjacency-list build produced; every
// traversal tie-break (and therefore every routed path) is preserved
// bit-for-bit. The lazy build is double-checked under a mutex, so
// concurrent const readers (parallel AL construction) are safe as long as
// no thread mutates the graph meanwhile — the same protocol as the
// topology's switch-graph cache.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/thread_annotations.h"

namespace alvc::graph {

/// FNV-1a offset basis; the seed every fingerprint chain starts from.
inline constexpr std::uint64_t kFingerprintSeed = 14695981039346656037ULL;

/// Folds one 64-bit value into a running fingerprint (order-sensitive:
/// mixing [a, b] and [b, a] yields different results).
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t fp, std::uint64_t value) noexcept;

/// 64-bit fingerprint of a vertex sequence. Two paths fingerprint equal
/// only if they visit the same vertices in the same order (modulo hash
/// collisions); used to detect cached-path corruption cheaply.
[[nodiscard]] std::uint64_t path_fingerprint(std::span<const std::size_t> vertices) noexcept;

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  double weight = 1.0;
};

/// Half-edge as seen from a vertex.
struct Neighbor {
  std::size_t vertex = 0;
  std::size_t edge = 0;  // index into edges()
  double weight = 1.0;
};

/// Borrowed view of a graph's CSR arrays: offsets[v]..offsets[v+1] bound
/// vertex v's slice of the dense half-edge array. Traversal loops grab one
/// view up front and index it directly, skipping the per-call validity
/// check `Graph::neighbors` pays. Invalidated by any graph mutation.
struct CsrView {
  std::span<const std::size_t> offsets;  // vertex_count + 1 entries
  std::span<const Neighbor> adjacency;   // dense half-edges, CSR order

  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t v) const noexcept {
    return adjacency.subspan(offsets[v], offsets[v + 1] - offsets[v]);
  }
};

class Graph {
 public:
  enum class Kind { kUndirected, kDirected };

  explicit Graph(std::size_t vertex_count = 0, Kind kind = Kind::kUndirected)
      : kind_(kind), vertex_count_(vertex_count) {}

  // The CSR cache (and the mutex guarding its lazy build) is per-object
  // state: copies transfer the edge list and start with a cold cache; moves
  // carry a warm cache with them.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t vertex_count() const noexcept { return vertex_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds a vertex; returns its index.
  std::size_t add_vertex();

  /// Adds an edge; returns its index. Undirected edges appear in both
  /// endpoints' adjacency. Throws on out-of-range endpoints.
  std::size_t add_edge(std::size_t from, std::size_t to, double weight = 1.0);

  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t v) const;
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] const Edge& edge(std::size_t e) const { return edges_.at(e); }
  [[nodiscard]] std::size_t degree(std::size_t v) const { return neighbors(v).size(); }

  /// True if some edge directly connects a and b (O(min degree)).
  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const;

  /// The CSR arrays, built now if stale. The view borrows the graph's
  /// storage: any later mutation invalidates it.
  [[nodiscard]] CsrView csr() const;

  /// Builds the CSR arrays if the mutation epoch moved since the last
  /// build. Idempotent and thread-safe; `neighbors`/`csr` call it lazily,
  /// owners that publish a graph to concurrent readers (the topology's
  /// switch-graph cache) call it eagerly so readers never contend.
  void ensure_csr() const;

  /// Monotone counter bumped by every mutation; the CSR cache is valid
  /// exactly when it was built at the current epoch.
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept { return epoch_; }

 private:
  void check_vertex(std::size_t v) const;
  void build_csr() const ALVC_EXCLUDES(csr_mutex_);

  Kind kind_;
  std::size_t vertex_count_ = 0;
  std::vector<Edge> edges_;

  // Mutation epoch: plain on the writer side (mutation is externally
  // synchronized), compared against the atomically published build epoch.
  std::uint64_t epoch_ = 1;

  mutable std::mutex csr_mutex_;
  mutable std::vector<std::size_t> csr_offsets_ ALVC_GUARDED_BY(csr_mutex_);
  mutable std::vector<Neighbor> csr_adjacency_ ALVC_GUARDED_BY(csr_mutex_);
  /// Epoch the CSR arrays were built at; 0 = never. The release store in
  /// build_csr pairs with acquire loads in the accessors.
  mutable std::atomic<std::uint64_t> csr_built_epoch_{0};
};

}  // namespace alvc::graph
