#include "graph/max_flow.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace alvc::graph {

FlowNetwork::FlowNetwork(std::size_t vertex_count) : vertex_count_(vertex_count) {}

std::size_t FlowNetwork::add_edge(std::size_t u, std::size_t v, double capacity) {
  if (u >= vertex_count_ || v >= vertex_count_) {
    throw std::out_of_range("FlowNetwork: vertex out of range");
  }
  if (capacity < 0) throw std::invalid_argument("FlowNetwork: negative capacity");
  const std::size_t forward = arcs_.size();
  arcs_.push_back(Arc{v, forward + 1, capacity, 0});
  arcs_.push_back(Arc{u, forward, 0, 0});
  csr_stale_ = true;
  return forward;
}

void FlowNetwork::ensure_csr() {
  if (!csr_stale_) return;
  // Arc e's owner is the tail vertex — recoverable as the paired residual
  // arc's head. Arcs were pushed in (forward, reverse) order, which is the
  // same global order the old per-vertex push_backs ran in, so filling in
  // arc-index order reproduces each vertex's arc sequence exactly.
  offsets_.assign(vertex_count_ + 1, 0);
  for (const Arc& arc : arcs_) ++offsets_[arcs_[arc.reverse].to + 1];
  for (std::size_t v = 0; v < vertex_count_; ++v) offsets_[v + 1] += offsets_[v];
  arc_index_.resize(arcs_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < arcs_.size(); ++e) {
    arc_index_[cursor[arcs_[arcs_[e].reverse].to]++] = e;
  }
  csr_stale_ = false;
}

bool FlowNetwork::bfs_layers(std::size_t s, std::size_t t) {
  level_.assign(vertex_count_, -1);
  frontier_.clear();
  level_[s] = 0;
  frontier_.push_back(s);
  for (std::size_t head = 0; head < frontier_.size(); ++head) {
    const std::size_t v = frontier_[head];
    for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const Arc& arc = arcs_[arc_index_[i]];
      if (level_[arc.to] == -1 && arc.capacity - arc.flow > 1e-12) {
        level_[arc.to] = level_[v] + 1;
        frontier_.push_back(arc.to);
      }
    }
  }
  return level_[t] != -1;
}

double FlowNetwork::dfs_push(std::size_t v, std::size_t t, double pushed) {
  if (v == t || pushed <= 0) return pushed;
  for (std::size_t& i = next_arc_[v]; i < offsets_[v + 1]; ++i) {
    Arc& arc = arcs_[arc_index_[i]];
    if (level_[arc.to] != level_[v] + 1) continue;
    const double residual = arc.capacity - arc.flow;
    if (residual <= 1e-12) continue;
    const double got = dfs_push(arc.to, t, std::min(pushed, residual));
    if (got > 0) {
      arc.flow += got;
      arcs_[arc.reverse].flow -= got;
      return got;
    }
  }
  return 0;
}

double FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  if (s >= vertex_count_ || t >= vertex_count_) {
    throw std::out_of_range("FlowNetwork: terminal out of range");
  }
  if (s == t) throw std::invalid_argument("FlowNetwork: source equals sink");
  ensure_csr();
  for (auto& arc : arcs_) arc.flow = 0;
  double total = 0;
  while (bfs_layers(s, t)) {
    next_arc_.assign(offsets_.begin(), offsets_.end() - 1);
    for (;;) {
      const double pushed = dfs_push(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= 0) break;
      total += pushed;
    }
  }
  return total;
}

double FlowNetwork::flow_on(std::size_t e) const { return arcs_.at(e).flow; }

double FlowNetwork::capacity_of(std::size_t e) const { return arcs_.at(e).capacity; }

}  // namespace alvc::graph
