#include "graph/max_flow.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace alvc::graph {

FlowNetwork::FlowNetwork(std::size_t vertex_count) : adjacency_(vertex_count) {}

std::size_t FlowNetwork::add_edge(std::size_t u, std::size_t v, double capacity) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    throw std::out_of_range("FlowNetwork: vertex out of range");
  }
  if (capacity < 0) throw std::invalid_argument("FlowNetwork: negative capacity");
  const std::size_t forward = arcs_.size();
  arcs_.push_back(Arc{v, forward + 1, capacity, 0});
  arcs_.push_back(Arc{u, forward, 0, 0});
  adjacency_[u].push_back(forward);
  adjacency_[v].push_back(forward + 1);
  return forward;
}

bool FlowNetwork::bfs_layers(std::size_t s, std::size_t t) {
  level_.assign(adjacency_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t e : adjacency_[v]) {
      const Arc& arc = arcs_[e];
      if (level_[arc.to] == -1 && arc.capacity - arc.flow > 1e-12) {
        level_[arc.to] = level_[v] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[t] != -1;
}

double FlowNetwork::dfs_push(std::size_t v, std::size_t t, double pushed) {
  if (v == t || pushed <= 0) return pushed;
  for (std::size_t& i = next_arc_[v]; i < adjacency_[v].size(); ++i) {
    const std::size_t e = adjacency_[v][i];
    Arc& arc = arcs_[e];
    if (level_[arc.to] != level_[v] + 1) continue;
    const double residual = arc.capacity - arc.flow;
    if (residual <= 1e-12) continue;
    const double got = dfs_push(arc.to, t, std::min(pushed, residual));
    if (got > 0) {
      arc.flow += got;
      arcs_[arc.reverse].flow -= got;
      return got;
    }
  }
  return 0;
}

double FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  if (s >= adjacency_.size() || t >= adjacency_.size()) {
    throw std::out_of_range("FlowNetwork: terminal out of range");
  }
  if (s == t) throw std::invalid_argument("FlowNetwork: source equals sink");
  for (auto& arc : arcs_) arc.flow = 0;
  double total = 0;
  while (bfs_layers(s, t)) {
    next_arc_.assign(adjacency_.size(), 0);
    for (;;) {
      const double pushed = dfs_push(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= 0) break;
      total += pushed;
    }
  }
  return total;
}

double FlowNetwork::flow_on(std::size_t e) const { return arcs_.at(e).flow; }

double FlowNetwork::capacity_of(std::size_t e) const { return arcs_.at(e).capacity; }

}  // namespace alvc::graph
