// Bipartite graph between "left" and "right" vertex sets.
//
// The AL construction algorithm (paper §III-C) works on two bipartite
// graphs: VM -> ToR (which ToR does each VM sit behind / connect to) and
// ToR -> OPS (which optical switches each ToR uplinks to). Left and right
// vertices are dense indices into their own ranges.
//
// Storage is an edge list plus lazily-built CSR adjacency per side (flat
// neighbor array + offsets); the CSR fill runs in edge-insertion order so
// every neighbor span reads in the order add_edge produced — the greedy
// cover's tie-breaking depends on it. Single-threaded by design (each AL
// build owns its bipartite graphs); no locking.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace alvc::graph {

class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count)
      : left_count_(left_count), right_count_(right_count) {}

  [[nodiscard]] std::size_t left_count() const noexcept { return left_count_; }
  [[nodiscard]] std::size_t right_count() const noexcept { return right_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds an edge (idempotence is not enforced; callers add each pair once).
  void add_edge(std::size_t left, std::size_t right);

  [[nodiscard]] std::span<const std::size_t> left_neighbors(std::size_t left) const;
  [[nodiscard]] std::span<const std::size_t> right_neighbors(std::size_t right) const;
  [[nodiscard]] std::size_t left_degree(std::size_t left) const {
    return left_neighbors(left).size();
  }
  [[nodiscard]] std::size_t right_degree(std::size_t right) const {
    return right_neighbors(right).size();
  }
  [[nodiscard]] bool has_edge(std::size_t left, std::size_t right) const;

 private:
  void ensure_csr() const;

  std::size_t left_count_;
  std::size_t right_count_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;  // (left, right)
  mutable std::vector<std::size_t> left_offsets_;
  mutable std::vector<std::size_t> left_neighbors_;
  mutable std::vector<std::size_t> right_offsets_;
  mutable std::vector<std::size_t> right_neighbors_;
  mutable bool csr_stale_ = true;
};

}  // namespace alvc::graph
