// Bipartite graph between "left" and "right" vertex sets.
//
// The AL construction algorithm (paper §III-C) works on two bipartite
// graphs: VM -> ToR (which ToR does each VM sit behind / connect to) and
// ToR -> OPS (which optical switches each ToR uplinks to). Left and right
// vertices are dense indices into their own ranges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace alvc::graph {

class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count)
      : left_adj_(left_count), right_adj_(right_count) {}

  [[nodiscard]] std::size_t left_count() const noexcept { return left_adj_.size(); }
  [[nodiscard]] std::size_t right_count() const noexcept { return right_adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds an edge (idempotence is not enforced; callers add each pair once).
  void add_edge(std::size_t left, std::size_t right);

  [[nodiscard]] std::span<const std::size_t> left_neighbors(std::size_t left) const;
  [[nodiscard]] std::span<const std::size_t> right_neighbors(std::size_t right) const;
  [[nodiscard]] std::size_t left_degree(std::size_t left) const {
    return left_neighbors(left).size();
  }
  [[nodiscard]] std::size_t right_degree(std::size_t right) const {
    return right_neighbors(right).size();
  }
  [[nodiscard]] bool has_edge(std::size_t left, std::size_t right) const;

 private:
  std::vector<std::vector<std::size_t>> left_adj_;
  std::vector<std::vector<std::size_t>> right_adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace alvc::graph
