// Shortest paths: BFS (hop count) and Dijkstra (weighted).
//
// Routing a flow through its NFC visits the chain's hosts in order; each
// leg is a shortest path in the hybrid topology, optionally restricted to a
// vertex subset (the slice's AL plus its ToRs). Two API tiers:
//   * bfs/dijkstra return the full distance/predecessor tree and accept an
//     arbitrary std::function filter — the general tool.
//   * bfs_path_to answers the one question the routing hot path asks
//     (shortest path source -> target inside a VertexSet) with zero
//     per-call allocation beyond the returned path: membership tests are
//     one array load, traversal state lives in the reusable thread
//     scratch, and the search stops the moment the target is discovered.
//     Its result is IDENTICAL to extract_path(bfs(g, source, filter),
//     target) for the equivalent filter — BFS sets a vertex's predecessor
//     at discovery time, so stopping early cannot change the path.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"

namespace alvc::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();
inline constexpr std::size_t kNoVertex = static_cast<std::size_t>(-1);

struct PathResult {
  std::vector<double> distance;        // distance[v] or kUnreachable
  std::vector<std::size_t> predecessor;  // predecessor[v] or kNoVertex
};

/// Optional vertex filter: vertices where filter(v) is false are not
/// traversed (source is always allowed).
using VertexFilter = std::function<bool(std::size_t)>;

/// Unweighted BFS from `source`.
[[nodiscard]] PathResult bfs(const Graph& g, std::size_t source,
                             const VertexFilter& filter = nullptr);

/// Dijkstra from `source` over edge weights (must be >= 0).
[[nodiscard]] PathResult dijkstra(const Graph& g, std::size_t source,
                                  const VertexFilter& filter = nullptr);

/// Shortest hop-count path source -> target traversing only vertices in
/// `allowed` (source exempt, target must be in `allowed` to be reached).
/// nullopt when unreachable. Bit-identical to the bfs + extract_path pair
/// under the equivalent filter; this is the routing hot-path primitive.
[[nodiscard]] std::optional<std::vector<std::size_t>> bfs_path_to(const Graph& g,
                                                                  std::size_t source,
                                                                  std::size_t target,
                                                                  const VertexSet& allowed);

/// Reconstructs source->target as a vertex sequence; nullopt if unreachable.
[[nodiscard]] std::optional<std::vector<std::size_t>> extract_path(const PathResult& result,
                                                                   std::size_t target);

}  // namespace alvc::graph
