// Shortest paths: BFS (hop count) and Dijkstra (weighted).
//
// Routing a flow through its NFC visits the chain's hosts in order; each
// leg is a shortest path in the hybrid topology, optionally restricted to a
// vertex subset (the slice's AL plus its ToRs).
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace alvc::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();
inline constexpr std::size_t kNoVertex = static_cast<std::size_t>(-1);

struct PathResult {
  std::vector<double> distance;        // distance[v] or kUnreachable
  std::vector<std::size_t> predecessor;  // predecessor[v] or kNoVertex
};

/// Optional vertex filter: vertices where filter(v) is false are not
/// traversed (source is always allowed).
using VertexFilter = std::function<bool(std::size_t)>;

/// Unweighted BFS from `source`.
[[nodiscard]] PathResult bfs(const Graph& g, std::size_t source,
                             const VertexFilter& filter = nullptr);

/// Dijkstra from `source` over edge weights (must be >= 0).
[[nodiscard]] PathResult dijkstra(const Graph& g, std::size_t source,
                                  const VertexFilter& filter = nullptr);

/// Reconstructs source->target as a vertex sequence; nullopt if unreachable.
[[nodiscard]] std::optional<std::vector<std::size_t>> extract_path(const PathResult& result,
                                                                   std::size_t target);

}  // namespace alvc::graph
