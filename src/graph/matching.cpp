#include "graph/matching.h"

#include <limits>
#include <queue>

namespace alvc::graph {

namespace {
constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
}

Matching maximum_bipartite_matching(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  Matching m;
  m.match_left.assign(nl, Matching::kUnmatched);
  m.match_right.assign(g.right_count(), Matching::kUnmatched);

  std::vector<std::size_t> dist(nl, kInf);

  // BFS layering from free left vertices; returns true if an augmenting
  // path exists.
  const auto bfs = [&]() -> bool {
    std::queue<std::size_t> queue;
    for (std::size_t l = 0; l < nl; ++l) {
      if (m.match_left[l] == Matching::kUnmatched) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found = false;
    while (!queue.empty()) {
      const std::size_t l = queue.front();
      queue.pop();
      for (std::size_t r : g.left_neighbors(l)) {
        const std::size_t next = m.match_right[r];
        if (next == Matching::kUnmatched) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found;
  };

  // DFS along layered graph.
  const auto dfs = [&](auto&& self, std::size_t l) -> bool {
    for (std::size_t r : g.left_neighbors(l)) {
      const std::size_t next = m.match_right[r];
      if (next == Matching::kUnmatched || (dist[next] == dist[l] + 1 && self(self, next))) {
        m.match_left[l] = r;
        m.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::size_t l = 0; l < nl; ++l) {
      if (m.match_left[l] == Matching::kUnmatched && dfs(dfs, l)) ++m.size;
    }
  }
  return m;
}

}  // namespace alvc::graph
