#include "graph/union_find.h"

#include <numeric>
#include <stdexcept>

namespace alvc::graph {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0), components_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t v) {
  if (v >= parent_.size()) throw std::out_of_range("UnionFind::find");
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --components_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

std::vector<std::size_t> connected_components(const Graph& g) {
  UnionFind uf(g.vertex_count());
  for (const Edge& e : g.edges()) uf.unite(e.from, e.to);
  std::vector<std::size_t> label(g.vertex_count(), static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const std::size_t root = uf.find(v);
    if (label[root] == static_cast<std::size_t>(-1)) label[root] = next++;
    label[v] = label[root];
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.vertex_count() == 0) return true;
  UnionFind uf(g.vertex_count());
  for (const Edge& e : g.edges()) uf.unite(e.from, e.to);
  return uf.component_count() == 1;
}

}  // namespace alvc::graph
