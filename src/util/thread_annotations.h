// Clang Thread Safety Analysis annotations (compile away elsewhere).
//
// Annotating a mutex-protected member with ALVC_GUARDED_BY(mu_) and the
// functions that lock it with ALVC_REQUIRES/ALVC_EXCLUDES turns the
// locking discipline into a compiler-checked contract: a Clang build with
// `-Wthread-safety -Werror` (cmake -DALVC_STATIC_ANALYSIS=ON, see
// scripts/check.sh) rejects any access that does not hold the right lock,
// on every build, not just on the interleavings a TSan soak happens to
// explore. Under GCC (or any compiler without the attributes) every macro
// expands to nothing, so annotated headers stay portable.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ALVC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef ALVC_THREAD_ANNOTATION_
#define ALVC_THREAD_ANNOTATION_(x)  // non-Clang: no-op
#endif

/// Member access requires holding the given capability (mutex).
#define ALVC_GUARDED_BY(x) ALVC_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee access requires holding the given capability.
#define ALVC_PT_GUARDED_BY(x) ALVC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The caller must hold the capability when calling this function.
#define ALVC_REQUIRES(...) \
  ALVC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ALVC_REQUIRES_SHARED(...) \
  ALVC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function takes it itself;
/// calling with it held would self-deadlock).
#define ALVC_EXCLUDES(...) ALVC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires / releases the capability.
#define ALVC_ACQUIRE(...) ALVC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ALVC_ACQUIRE_SHARED(...) \
  ALVC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define ALVC_RELEASE(...) ALVC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ALVC_RELEASE_SHARED(...) \
  ALVC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define ALVC_TRY_ACQUIRE(...) \
  ALVC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares a type as a capability (for custom lock types).
#define ALVC_CAPABILITY(x) ALVC_THREAD_ANNOTATION_(capability(x))
#define ALVC_SCOPED_CAPABILITY ALVC_THREAD_ANNOTATION_(scoped_lockable)

/// The function returns a reference to the given capability.
#define ALVC_RETURN_CAPABILITY(x) ALVC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for protocols the analysis cannot model (e.g. reading a
/// quiescent cache after its publication barrier). Every use must carry a
/// comment explaining why the unchecked access is safe.
#define ALVC_NO_THREAD_SAFETY_ANALYSIS \
  ALVC_THREAD_ANNOTATION_(no_thread_safety_analysis)
