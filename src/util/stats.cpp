#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace alvc::util {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double SampleSet::percentile(double p) const {
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of [0,100]");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

std::string SampleSet::summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " min=" << min() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range/buckets");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
    ++counts_[i];
  }
}

double Histogram::bucket_low(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("bucket_low");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const { return bucket_low(i) + width_; }

}  // namespace alvc::util
