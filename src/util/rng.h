// Deterministic pseudo-random number generation.
//
// All stochastic components (topology generation, workload arrivals, the
// random AL-construction baseline) draw from an explicitly seeded Rng so
// every experiment is reproducible from its seed. The engine is
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace alvc::util {

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises state from `seed` via SplitMix64 (recommended by the
  /// xoshiro authors so that nearby seeds yield uncorrelated streams).
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  /// Uniform size_t in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Bounded Pareto on [lo, hi] with shape alpha — heavy-tailed flow sizes.
  double bounded_pareto(double alpha, double lo, double hi);
  /// Poisson with mean lambda (uses std::poisson_distribution).
  std::uint64_t poisson(double lambda);
  /// Zipf-like categorical index in [0, n) with exponent s.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[uniform_index(i)]);
    }
  }

  /// Reservoir-samples `k` distinct elements from `items` (order arbitrary).
  template <typename T>
  std::vector<T> sample(std::span<const T> items, std::size_t k) {
    if (k > items.size()) throw std::invalid_argument("sample: k exceeds population");
    std::vector<T> out(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(k));
    for (std::size_t i = k; i < items.size(); ++i) {
      const std::size_t j = uniform_index(i + 1);
      if (j < k) out[j] = items[i];
    }
    return out;
  }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace alvc::util
