// Lightweight error handling for recoverable failures.
//
// Operations that can fail for reasons the caller must handle (admission
// rejected, no feasible placement, exhausted OPS pool) return
// Expected<T>. Programming errors (violated preconditions) use assertions
// and exceptions instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace alvc::util {

/// Category of a recoverable failure.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kCapacityExceeded,
  kConflict,       // e.g. OPS already owned by another abstraction layer
  kInfeasible,     // no solution exists (placement/cover)
  kRejected,       // admission control said no
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A recoverable failure: code plus human-readable context.
struct [[nodiscard]] Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(alvc::util::to_string(code)) + ": " + message;
  }
};

/// Minimal expected-like type (std::expected is C++23). Class-level
/// [[nodiscard]]: every call returning an Expected must consume it — a
/// dropped result silently swallows the error path. Teardown/rollback
/// sites that genuinely cannot react use ALVC_IGNORE_STATUS below.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    require_value();
    return std::get<T>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    if (has_value()) throw std::logic_error("Expected holds a value, not an error");
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

 private:
  void require_value() const {
    if (!has_value()) {
      throw std::runtime_error("Expected holds error: " + std::get<Error>(storage_).to_string());
    }
  }

  std::variant<T, Error> storage_;
};

/// Expected<void> analogue. Class-level [[nodiscard]] for the same reason
/// as Expected: a discarded Status is a dropped failure.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Error& error() const {
    if (is_ok()) throw std::logic_error("Status is ok, no error");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace alvc::util

/// Deliberately discards a [[nodiscard]] result, with a named reason.
///
/// The only sanctioned way to drop a Status/Expected (the alvc_lint
/// `naked-void` rule rejects bare `(void)` casts): the reason string makes
/// the judgement call reviewable at the call site. Legitimate uses are
/// teardown/rollback paths where the outcome cannot change the action
/// taken (e.g. terminating instances while unwinding a failed provision).
/// The reason must be a non-empty string literal.
#define ALVC_IGNORE_STATUS(expr, reason)                                       \
  do {                                                                         \
    static_assert(sizeof(reason) > 1, "ALVC_IGNORE_STATUS: empty reason");     \
    (void)(expr); /* alvc-lint: allow(naked-void) — the macro itself */        \
  } while (0)
