// Dynamic bitset used by the cover algorithms.
//
// The vertex-cover and set-cover solvers repeatedly ask "which VMs are still
// uncovered?" over sets sized by the VM group; a word-packed bitset makes
// union/intersection/count O(n/64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alvc::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  void set(std::size_t i);
  void reset(std::size_t i);
  void set_all() noexcept;
  void reset_all() noexcept;
  [[nodiscard]] bool test(std::size_t i) const;

  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }
  [[nodiscard]] bool all() const noexcept;

  /// Index of first set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;
  /// Index of first set bit strictly after `i`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);
  /// this &= ~other
  DynamicBitset& subtract(const DynamicBitset& other);

  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  /// popcount(this & other) without materialising the intersection.
  [[nodiscard]] std::size_t count_and(const DynamicBitset& other) const;
  /// popcount(this & ~other): how many of our bits the other set misses.
  [[nodiscard]] std::size_t count_andnot(const DynamicBitset& other) const;
  /// True when every set bit of this is also set in other.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  bool operator==(const DynamicBitset& other) const noexcept = default;

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  void check_index(std::size_t i) const;
  void check_same_size(const DynamicBitset& other) const;
  void clear_trailing_bits() noexcept;

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace alvc::util
