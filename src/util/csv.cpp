#include "util/csv.h"

#include <stdexcept>

namespace alvc::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : columns_(header.size()), file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += escape(header[i]);
  }
  emit(line);
}

CsvWriter::CsvWriter(const std::vector<std::string>& header) : columns_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += escape(header[i]);
  }
  emit(line);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width " + std::to_string(fields.size()) +
                                " != header width " + std::to_string(columns_));
  }
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += escape(fields[i]);
  }
  emit(line);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
  } else {
    buffer_ << line << '\n';
  }
}

}  // namespace alvc::util
