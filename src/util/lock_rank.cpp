#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace alvc::util {

namespace {

struct Held {
  int rank;
  const char* name;
};

// Fixed-size stack: the deepest legal nesting is the full rank table, and
// a plain array keeps acquire() allocation-free (it runs under mutexes on
// the hot path when the check is on).
constexpr std::size_t kMaxHeld = 16;
thread_local Held t_held[kMaxHeld];  // NOLINT(modernize-avoid-c-arrays)
thread_local std::size_t t_depth = 0;

}  // namespace

void LockRank::acquire(int rank, const char* name) {
  if (t_depth > 0) {
    const Held& top = t_held[t_depth - 1];
    if (rank <= top.rank) {
      std::fprintf(stderr,
                   "alvc lock-order violation: acquiring \"%s\" (rank %d) while holding \"%s\" "
                   "(rank %d); ranks must strictly increase (see util/lock_rank.h)\n",
                   name, rank, top.name, top.rank);
      std::abort();
    }
  }
  if (t_depth == kMaxHeld) {
    std::fprintf(stderr, "alvc lock-order: held-lock stack overflow acquiring \"%s\"\n", name);
    std::abort();
  }
  t_held[t_depth] = Held{rank, name};
  ++t_depth;
}

void LockRank::release(int rank) {
  if (t_depth == 0 || t_held[t_depth - 1].rank != rank) {
    std::fprintf(stderr, "alvc lock-order: non-LIFO release of rank %d\n", rank);
    std::abort();
  }
  --t_depth;
}

std::size_t LockRank::held_depth() noexcept { return t_depth; }

}  // namespace alvc::util
