// Runtime enforcement of the whole-program lock order.
//
// tools/alvc_analyze derives a static lock-order graph and proves it
// acyclic; this registry asserts the same total order on the real mutexes
// at runtime, per thread. Each mutex class is assigned a rank, and a
// thread may only acquire locks in strictly increasing rank order. A
// violation is a latent deadlock the static pass should have caught (or a
// new nesting the rank table must learn about) — the process aborts with
// both lock names so the report is actionable either way.
//
// Rank table (mirrored in DESIGN.md §11; gaps leave room for new layers):
//
//   rank | lock                          | mutex
//   -----+-------------------------------+----------------------------------
//    10  | orchestrator.control_plane    | reserved (externally synchronized)
//    15  | orchestrator.agent_merge      | ControlAgent::merge_mu_
//    20  | cluster.manager               | reserved (single-threaded today)
//    30  | topology.switch_graph_cache   | DataCenterTopology::switch_graph_mutex_
//    40  | graph.csr                     | Graph::csr_mutex_
//    50  | telemetry.tracer              | Tracer::mu_
//    60  | telemetry.metric_registry     | MetricRegistry::mu_
//    70  | util.executor.task_group      | TaskGroup::mu_
//    80  | util.executor.queue           | Executor::mu_
//
// The only real nestings in the tree are 30 -> 40 (warming the switch-graph
// cache builds the graph's CSR under both locks) and telemetry taken under
// either; rank 15 is a leaf in practice (the agent's merge section holds no
// other lock and makes no telemetry calls). The LockRank class is always compiled (so tests can drive
// it directly); the ALVC_LOCK_RANK macro instrumenting production lock
// sites expands to nothing unless the ALVC_LOCK_ORDER_CHECK CMake option
// defines the macro of the same name.
#pragma once

#include <cstddef>

namespace alvc::util {

namespace lock_rank {
inline constexpr int kOrchestratorControlPlane = 10;
inline constexpr int kOrchestratorAgentMerge = 15;
inline constexpr int kClusterManager = 20;
inline constexpr int kTopologySwitchGraphCache = 30;
inline constexpr int kGraphCsr = 40;
inline constexpr int kTelemetryTracer = 50;
inline constexpr int kTelemetryMetricRegistry = 60;
inline constexpr int kExecutorTaskGroup = 70;
inline constexpr int kExecutorQueue = 80;
}  // namespace lock_rank

/// Per-thread held-rank stack. acquire() aborts unless `rank` is strictly
/// greater than every rank the calling thread already holds; release()
/// aborts on non-LIFO release (impossible with the RAII Scope). A
/// scoped_lock over several mutexes of one class is a single atomic
/// acquisition: record it as one Scope.
class LockRank {
 public:
  static void acquire(int rank, const char* name);
  static void release(int rank);
  /// Locks the calling thread currently holds (for tests/diagnostics).
  [[nodiscard]] static std::size_t held_depth() noexcept;

  class Scope {
   public:
    Scope(int rank, const char* name) : rank_(rank) { acquire(rank, name); }
    ~Scope() { release(rank_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    int rank_;
  };
};

}  // namespace alvc::util

// Statement macro: declare immediately before the lock guard it ranks, in
// the same scope, so the rank is held exactly as long as the mutex.
#if defined(ALVC_LOCK_ORDER_CHECK)
#define ALVC_LOCK_RANK_CAT2(a, b) a##b
#define ALVC_LOCK_RANK_CAT(a, b) ALVC_LOCK_RANK_CAT2(a, b)
#define ALVC_LOCK_RANK(rank, name) \
  const ::alvc::util::LockRank::Scope ALVC_LOCK_RANK_CAT(alvc_lock_rank_, __LINE__)(rank, name)
#else
#define ALVC_LOCK_RANK(rank, name) \
  do {                             \
  } while (false)
#endif
