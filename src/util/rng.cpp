#include "util/rng.h"

#include <cmath>

namespace alvc::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_u64: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return next();
  // Rejection sampling to avoid modulo bias: accept when r falls below the
  // largest multiple of bound.
  const std::uint64_t bound = span + 1;
  const std::uint64_t max_multiple = (~0ULL / bound) * bound;
  std::uint64_t r = next();
  while (r >= max_multiple) r = next();
  return lo + (r % bound);
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n == 0");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double lambda) {
  if (lambda <= 0) throw std::invalid_argument("exponential: lambda must be > 0");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0) u = 1e-300;
  return -std::log(u) / lambda;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  if (alpha <= 0 || lo <= 0 || hi <= lo) {
    throw std::invalid_argument("bounded_pareto: require alpha>0, 0<lo<hi");
  }
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0) throw std::invalid_argument("poisson: lambda must be >= 0");
  if (lambda == 0) return 0;
  std::poisson_distribution<std::uint64_t> dist(lambda);
  return dist(*this);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n == 0");
  // Inverse-CDF over the (small) normalised harmonic weights. n is the
  // number of service types or VNF kinds, so linear scan is fine.
  double norm = 0;
  for (std::size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double u = uniform01() * norm;
  for (std::size_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= 0) return i - 1;
  }
  return n - 1;
}

}  // namespace alvc::util
