// CSV emission for bench results.
//
// Benches print human-readable rows to stdout and can mirror them into a
// CSV file so figures can be re-plotted without re-running.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace alvc::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  /// In-memory writer (for tests); use str() to read back.
  explicit CsvWriter(const std::vector<std::string>& header);

  /// Appends one row; the number of fields must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed types.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    row(fields);
  }

  [[nodiscard]] std::string str() const { return buffer_.str(); }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string to_field(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& field);
  void emit(const std::string& line);

  std::size_t columns_;
  std::size_t rows_ = 0;
  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
};

}  // namespace alvc::util
