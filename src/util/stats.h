// Summary statistics and histograms for experiment output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alvc::util {

/// Streaming accumulator: count/mean/variance via Welford, min/max, sum.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Stores all samples; supports exact percentiles. Used where sample counts
/// are modest (per-experiment metrics), not in the simulator hot path.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by linear interpolation; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double sum() const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// "mean=… p50=… p99=… max=…" one-liner for bench output.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width linear histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace alvc::util
