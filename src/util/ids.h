// Strong identifier types.
//
// Every entity in the AL-VC system (server, VM, ToR switch, optical switch,
// cluster, NFC, VNF instance, flow, ...) is referred to by a small integer
// index. Using a raw std::size_t for all of them invites silent cross-entity
// mix-ups (passing a VM id where a ToR id is expected), so each entity gets
// its own tagged id type. Ids are cheap value types: trivially copyable,
// totally ordered, and hashable.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace alvc::util {

/// A strongly typed integer identifier. `Tag` only disambiguates the type;
/// it is never instantiated.
template <typename Tag>
class TaggedId {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no such entity".
  static constexpr value_type kInvalidValue = std::numeric_limits<value_type>::max();

  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalidValue; }

  /// Convenience for indexing into dense arrays keyed by this id.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }

  [[nodiscard]] static constexpr TaggedId invalid() noexcept { return TaggedId{}; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) noexcept = default;

 private:
  value_type value_ = kInvalidValue;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TaggedId<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

// Entity tags. The structs are intentionally incomplete.
struct ServerTag;
struct VmTag;
struct TorTag;
struct OpsTag;
struct LinkTag;
struct ClusterTag;
struct ServiceTag;
struct NfcTag;
struct VnfTag;
struct VnfInstanceTag;
struct FlowTag;
struct SliceTag;
struct TenantTag;

using ServerId = TaggedId<ServerTag>;
using VmId = TaggedId<VmTag>;
using TorId = TaggedId<TorTag>;
using OpsId = TaggedId<OpsTag>;
using LinkId = TaggedId<LinkTag>;
using ClusterId = TaggedId<ClusterTag>;
using ServiceId = TaggedId<ServiceTag>;
using NfcId = TaggedId<NfcTag>;
using VnfId = TaggedId<VnfTag>;
using VnfInstanceId = TaggedId<VnfInstanceTag>;
using FlowId = TaggedId<FlowTag>;
using SliceId = TaggedId<SliceTag>;
using TenantId = TaggedId<TenantTag>;

}  // namespace alvc::util

namespace std {
template <typename Tag>
struct hash<alvc::util::TaggedId<Tag>> {
  size_t operator()(alvc::util::TaggedId<Tag> id) const noexcept {
    return std::hash<typename alvc::util::TaggedId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
