// Minimal leveled logger.
//
// The library itself stays quiet by default (kWarn); examples and benches
// raise the level for narration. Not thread-safe by design — the simulator
// is single-threaded and benches run one workload at a time.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace alvc::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] constexpr std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

/// Stream-style log statement builder used by the ALVC_LOG macro.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogStatement() { Logger::instance().log(level_, component_, stream_.str()); }

  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace alvc::util

#define ALVC_LOG(level, component)                                      \
  if (!::alvc::util::Logger::instance().enabled(level)) {               \
  } else                                                                \
    ::alvc::util::LogStatement(level, component)

#define ALVC_LOG_DEBUG(component) ALVC_LOG(::alvc::util::LogLevel::kDebug, component)
#define ALVC_LOG_INFO(component) ALVC_LOG(::alvc::util::LogLevel::kInfo, component)
#define ALVC_LOG_WARN(component) ALVC_LOG(::alvc::util::LogLevel::kWarn, component)
#define ALVC_LOG_ERROR(component) ALVC_LOG(::alvc::util::LogLevel::kError, component)
