#include "util/executor.h"

#include <utility>

#include "util/lock_rank.h"

namespace alvc::util {

// ---- TaskGroup ----

// Condition waits are spelled as explicit loops rather than
// cv.wait(lock, pred): the thread-safety analysis checks a lambda body as
// a separate function, so a predicate reading a guarded member would need
// its own (unattachable) lock annotation.

TaskGroup::~TaskGroup() {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorTaskGroup, "util.executor.task_group");
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_ != 0) done_cv_.wait(lock);
}

void TaskGroup::submit(std::function<void()> fn) {
  {
    ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorTaskGroup, "util.executor.task_group");
    const std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  exec_->enqueue(this, std::move(fn));
}

void TaskGroup::wait_all() {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorTaskGroup, "util.executor.task_group");
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_ != 0) done_cv_.wait(lock);
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t TaskGroup::pending() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorTaskGroup, "util.executor.task_group");
  const std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

void TaskGroup::finish_one(std::exception_ptr error) {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorTaskGroup, "util.executor.task_group");
  const std::lock_guard<std::mutex> lock(mu_);
  if (error && !first_error_) first_error_ = std::move(error);
  --pending_;
  if (pending_ == 0) done_cv_.notify_all();
}

// ---- Executor ----

Executor::Executor(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorQueue, "util.executor.queue");
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Orphaned items (enqueued after shutdown began) still owe their group a
  // completion, else ~TaskGroup would hang. All workers have joined, but
  // take the lock anyway: it is uncontended and keeps the locking
  // discipline uniform for the static analysis.
  std::deque<Item> orphans;
  {
    ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorQueue, "util.executor.queue");
    const std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(queue_);
  }
  for (Item& item : orphans) item.group->finish_one(nullptr);
}

std::unique_ptr<TaskGroup> Executor::new_task_group() {
  return std::unique_ptr<TaskGroup>(new TaskGroup(*this));
}

void Executor::enqueue(TaskGroup* group, std::function<void()> fn) {
  {
    ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorQueue, "util.executor.queue");
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Item{group, std::move(fn)});
  }
  work_cv_.notify_one();
}

void Executor::worker_loop() {
  for (;;) {
    Item item;
    {
      ALVC_LOCK_RANK(alvc::util::lock_rank::kExecutorQueue, "util.executor.queue");
      std::unique_lock<std::mutex> lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // shutdown with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      item.fn();
    } catch (...) {
      error = std::current_exception();
    }
    item.group->finish_one(std::move(error));
  }
}

void fan_out_shards(Executor* executor, std::size_t shard_count,
                    const std::function<void(std::size_t)>& fn) {
  if (executor == nullptr) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) fn(shard);
    return;
  }
  auto tasks = executor->new_task_group();
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    tasks->submit([&fn, shard] { fn(shard); });
  }
  tasks->wait_all();
}

}  // namespace alvc::util
