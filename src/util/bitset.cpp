#include "util/bitset.h"

#include <bit>
#include <stdexcept>

namespace alvc::util {

DynamicBitset::DynamicBitset(std::size_t bits, bool value)
    : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, value ? ~0ULL : 0ULL) {
  clear_trailing_bits();
}

void DynamicBitset::check_index(std::size_t i) const {
  if (i >= bits_) throw std::out_of_range("DynamicBitset index");
}

void DynamicBitset::check_same_size(const DynamicBitset& other) const {
  if (bits_ != other.bits_) throw std::invalid_argument("DynamicBitset size mismatch");
}

void DynamicBitset::clear_trailing_bits() noexcept {
  const std::size_t rem = bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1;
}

void DynamicBitset::set(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] |= 1ULL << (i % kWordBits);
}

void DynamicBitset::reset(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
}

void DynamicBitset::set_all() noexcept {
  for (auto& w : words_) w = ~0ULL;
  clear_trailing_bits();
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

bool DynamicBitset::test(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::any() const noexcept {
  for (auto w : words_) {
    if (w) return true;
  }
  return false;
}

bool DynamicBitset::all() const noexcept { return count() == bits_; }

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi]) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return bits_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  if (i + 1 >= bits_) return bits_;
  std::size_t start = i + 1;
  std::size_t wi = start / kWordBits;
  const std::uint64_t masked = words_[wi] & (~0ULL << (start % kWordBits));
  if (masked) return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(masked));
  for (++wi; wi < words_.size(); ++wi) {
    if (words_[wi]) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return bits_;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::size_t DynamicBitset::count_and(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return n;
}

std::size_t DynamicBitset::count_andnot(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & ~other.words_[i]));
  }
  return n;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

}  // namespace alvc::util
