#include "util/logging.h"

namespace alvc::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace alvc::util
