// Fixed-size thread pool with task groups.
//
// The AL construction algorithm (paper §III-C) is independent per VM
// service group, so ClusterManager fans per-group builds out to a shared
// Executor. The shape follows the heyp cluster-agent allocator (fixed pool
// + TaskGroup with submit/wait-all) but is dependency-free: plain
// std::thread, no absl.
//
// Threading model: tasks must not submit work to the TaskGroup they run in
// (wait_all would deadlock on a single-threaded pool); distinct TaskGroups
// backed by the same Executor may be used from distinct threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace alvc::util {

class Executor;

/// One batch of tasks on an Executor. submit() enqueues; wait_all() blocks
/// until every submitted task finished and rethrows the first task
/// exception (later ones are dropped). A group is reusable: further
/// submit()/wait_all() cycles after a wait are fine.
class TaskGroup {
 public:
  ~TaskGroup();  // blocks until all submitted tasks finished; never throws
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn` on the owning executor's pool.
  void submit(std::function<void()> fn) ALVC_EXCLUDES(mu_);

  /// Waits for every task submitted so far; rethrows the first exception
  /// thrown by a task (the group is reset and reusable afterwards).
  void wait_all() ALVC_EXCLUDES(mu_);

  /// Tasks submitted but not yet finished (racy; for tests/diagnostics).
  [[nodiscard]] std::size_t pending() const ALVC_EXCLUDES(mu_);

 private:
  friend class Executor;
  explicit TaskGroup(Executor& exec) : exec_(&exec) {}
  void finish_one(std::exception_ptr error) ALVC_EXCLUDES(mu_);

  Executor* exec_;
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ ALVC_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ ALVC_GUARDED_BY(mu_);
};

/// Fixed pool of worker threads. Threads start in the constructor and join
/// in the destructor; work is distributed FIFO.
class Executor {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit Executor(std::size_t threads = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_.size(); }

  /// Creates a task group bound to this executor. The executor must
  /// outlive the group.
  [[nodiscard]] std::unique_ptr<TaskGroup> new_task_group();

 private:
  friend class TaskGroup;
  struct Item {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void enqueue(TaskGroup* group, std::function<void()> fn) ALVC_EXCLUDES(mu_);
  void worker_loop() ALVC_EXCLUDES(mu_);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Item> queue_ ALVC_GUARDED_BY(mu_);
  bool shutdown_ ALVC_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // last: workers see members constructed
};

/// Runs `fn(shard)` once for every shard in [0, shard_count), fanned out to
/// `executor` when non-null, serially in ascending shard order otherwise.
/// The sharded control plane's one fan-out shape: each invocation must touch
/// only shard-local state (or synchronize its own merges), and the call
/// blocks until every shard finished. Rethrows the first task exception.
void fan_out_shards(Executor* executor, std::size_t shard_count,
                    const std::function<void(std::size_t)>& fn);

}  // namespace alvc::util
