// Host capacity tracking for VNF placement.
//
// A HostingPool views one topology and answers: which hosts can take this
// VNF, and what is left after placement? Optical hosts are the
// optoelectronic routers; electronic hosts are the servers. Reservations
// are tracked here so placement strategies can be pure functions over a
// pool snapshot.
#pragma once

#include <unordered_map>
#include <vector>

#include "nfv/lifecycle.h"
#include "nfv/vnf.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::nfv {

using alvc::util::Status;

class HostingPool {
 public:
  explicit HostingPool(const alvc::topology::DataCenterTopology& topo);

  /// Remaining capacity of a host.
  [[nodiscard]] Resources free_capacity(const HostRef& host) const;

  /// Whether `demand` (scaled) currently fits on `host`. Plain (non-
  /// optoelectronic) OPSs never host anything.
  [[nodiscard]] bool fits(const HostRef& host, const Resources& demand) const;

  /// Reserves capacity; kCapacityExceeded if it does not fit.
  [[nodiscard]] Status reserve(const HostRef& host, const Resources& demand);

  /// Returns previously reserved capacity. Over-release is clamped to the
  /// host's nominal capacity (defensive; flagged by is_consistent()).
  void release(const HostRef& host, const Resources& demand);

  /// Optical hosts (optoelectronic routers) with any free capacity,
  /// restricted to `candidates` when non-empty.
  [[nodiscard]] std::vector<alvc::util::OpsId> optical_hosts_with_capacity(
      const Resources& demand,
      const std::vector<alvc::util::OpsId>& candidates = {}) const;

  /// Electronic hosts (servers) that can take `demand`.
  [[nodiscard]] std::vector<alvc::util::ServerId> electronic_hosts_with_capacity(
      const Resources& demand) const;

  /// Capacity currently reserved on `host` (zero for untouched hosts).
  /// Exposed so cross-layer audits can check reservation conservation:
  /// the pool's books must equal the sum of live instances' scaled demand.
  [[nodiscard]] Resources reserved_on(const HostRef& host) const { return used_or_zero(host); }

  /// True if no host is over-committed.
  [[nodiscard]] bool is_consistent() const;

  [[nodiscard]] const alvc::topology::DataCenterTopology& topology() const noexcept {
    return *topo_;
  }

 private:
  [[nodiscard]] Resources nominal_capacity(const HostRef& host) const;
  [[nodiscard]] Resources& used(const HostRef& host);
  [[nodiscard]] Resources used_or_zero(const HostRef& host) const;

  const alvc::topology::DataCenterTopology* topo_;
  std::unordered_map<alvc::util::ServerId, Resources> server_used_;
  std::unordered_map<alvc::util::OpsId, Resources> ops_used_;
};

}  // namespace alvc::nfv
