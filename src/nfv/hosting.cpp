#include "nfv/hosting.h"

#include <algorithm>

namespace alvc::nfv {

using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;

HostingPool::HostingPool(const alvc::topology::DataCenterTopology& topo) : topo_(&topo) {}

Resources HostingPool::nominal_capacity(const HostRef& host) const {
  if (const auto* server = std::get_if<ServerId>(&host)) {
    return topo_->server(*server).capacity;
  }
  const auto& ops = topo_->ops(std::get<OpsId>(host));
  return ops.optoelectronic ? ops.compute : Resources{};
}

Resources& HostingPool::used(const HostRef& host) {
  if (const auto* server = std::get_if<ServerId>(&host)) return server_used_[*server];
  return ops_used_[std::get<OpsId>(host)];
}

Resources HostingPool::used_or_zero(const HostRef& host) const {
  if (const auto* server = std::get_if<ServerId>(&host)) {
    const auto it = server_used_.find(*server);
    return it == server_used_.end() ? Resources{} : it->second;
  }
  const auto it = ops_used_.find(std::get<OpsId>(host));
  return it == ops_used_.end() ? Resources{} : it->second;
}

Resources HostingPool::free_capacity(const HostRef& host) const {
  return nominal_capacity(host) - used_or_zero(host);
}

bool HostingPool::fits(const HostRef& host, const Resources& demand) const {
  return demand.fits_within(free_capacity(host));
}

Status HostingPool::reserve(const HostRef& host, const Resources& demand) {
  if (!fits(host, demand)) {
    return Error{ErrorCode::kCapacityExceeded, "host cannot take VNF demand"};
  }
  used(host) += demand;
  return Status::ok();
}

void HostingPool::release(const HostRef& host, const Resources& demand) {
  Resources& u = used(host);
  u -= demand;
  // Clamp against over-release.
  u.cpu_cores = std::max(u.cpu_cores, 0.0);
  u.memory_gb = std::max(u.memory_gb, 0.0);
  u.storage_gb = std::max(u.storage_gb, 0.0);
}

std::vector<OpsId> HostingPool::optical_hosts_with_capacity(
    const Resources& demand, const std::vector<OpsId>& candidates) const {
  std::vector<OpsId> out;
  const auto consider = [&](const alvc::topology::OpticalSwitch& ops) {
    if (!ops.optoelectronic || ops.failed) return;
    if (fits(HostRef{ops.id}, demand)) out.push_back(ops.id);
  };
  if (candidates.empty()) {
    for (const auto& ops : topo_->opss()) consider(ops);
  } else {
    for (OpsId id : candidates) consider(topo_->ops(id));
  }
  return out;
}

std::vector<ServerId> HostingPool::electronic_hosts_with_capacity(const Resources& demand) const {
  std::vector<ServerId> out;
  for (const auto& server : topo_->servers()) {
    if (fits(HostRef{server.id}, demand)) out.push_back(server.id);
  }
  return out;
}

bool HostingPool::is_consistent() const {
  for (const auto& [id, used] : server_used_) {
    if (!(nominal_capacity(HostRef{id}) - used).non_negative()) return false;
  }
  for (const auto& [id, used] : ops_used_) {
    if (!(nominal_capacity(HostRef{id}) - used).non_negative()) return false;
  }
  return true;
}

}  // namespace alvc::nfv
