#include "nfv/catalog.h"

namespace alvc::nfv {

VnfId VnfCatalog::add(VnfType type, std::string name, Resources demand,
                      double processing_us_per_kb, bool electronic_only) {
  const VnfId id{static_cast<VnfId::value_type>(descriptors_.size())};
  descriptors_.push_back(VnfDescriptor{.id = id,
                                       .type = type,
                                       .name = std::move(name),
                                       .demand = demand,
                                       .processing_us_per_kb = processing_us_per_kb,
                                       .electronic_only = electronic_only});
  return id;
}

std::optional<VnfId> VnfCatalog::find_by_type(VnfType type) const noexcept {
  for (const auto& d : descriptors_) {
    if (d.type == type) return d.id;
  }
  return std::nullopt;
}

VnfCatalog VnfCatalog::make_default() {
  VnfCatalog catalog;
  // Light, optically hostable functions.
  catalog.add(VnfType::kFirewall, "firewall",
              Resources{.cpu_cores = 1, .memory_gb = 2, .storage_gb = 4}, 0.05);
  catalog.add(VnfType::kNat, "nat", Resources{.cpu_cores = 1, .memory_gb = 1, .storage_gb = 2},
              0.02);
  catalog.add(VnfType::kSecurityGateway, "security-gw",
              Resources{.cpu_cores = 2, .memory_gb = 4, .storage_gb = 8}, 0.08);
  catalog.add(VnfType::kLoadBalancer, "load-balancer",
              Resources{.cpu_cores = 2, .memory_gb = 4, .storage_gb = 4}, 0.04);
  catalog.add(VnfType::kProxy, "proxy",
              Resources{.cpu_cores = 2, .memory_gb = 6, .storage_gb = 16}, 0.06);
  // Heavy functions: exceed the default optoelectronic budget or pinned.
  catalog.add(VnfType::kDeepPacketInspection, "dpi",
              Resources{.cpu_cores = 8, .memory_gb = 16, .storage_gb = 64}, 0.5);
  catalog.add(VnfType::kIntrusionDetection, "ids",
              Resources{.cpu_cores = 6, .memory_gb = 12, .storage_gb = 128}, 0.4);
  catalog.add(VnfType::kCache, "cache",
              Resources{.cpu_cores = 2, .memory_gb = 32, .storage_gb = 512}, 0.03);
  catalog.add(VnfType::kWanOptimizer, "wan-optimizer",
              Resources{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 64}, 0.2,
              /*electronic_only=*/true);
  return catalog;
}

}  // namespace alvc::nfv
