// VNF instance lifecycle (paper §IV-B).
//
// The Cloud/NFV manager "is responsible for managing the VNFs during its
// lifetime, such as VNF creation, scaling, termination, and update events".
// We model that as an explicit state machine with legal-transition
// enforcement and an event log the control-plane bench (FIG6) replays.
#pragma once

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "nfv/vnf.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::nfv {

using alvc::util::Expected;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::Status;
using alvc::util::VnfInstanceId;

/// Where a VNF instance runs: an electronic server or an optoelectronic
/// router in the optical domain (§IV-D).
using HostRef = std::variant<ServerId, OpsId>;

[[nodiscard]] inline bool is_optical_host(const HostRef& host) noexcept {
  return std::holds_alternative<OpsId>(host);
}

enum class VnfState : std::uint8_t {
  kRequested,
  kInstantiating,
  kActive,
  kScaling,
  kUpdating,
  kTerminating,
  kTerminated,
};

[[nodiscard]] constexpr std::string_view to_string(VnfState state) noexcept {
  switch (state) {
    case VnfState::kRequested: return "requested";
    case VnfState::kInstantiating: return "instantiating";
    case VnfState::kActive: return "active";
    case VnfState::kScaling: return "scaling";
    case VnfState::kUpdating: return "updating";
    case VnfState::kTerminating: return "terminating";
    case VnfState::kTerminated: return "terminated";
  }
  return "?";
}

/// Legal transitions:
///   requested -> instantiating -> active
///   active -> scaling -> active
///   active -> updating -> active
///   active | requested | instantiating -> terminating -> terminated
[[nodiscard]] bool transition_allowed(VnfState from, VnfState to) noexcept;

/// A deployed (or deploying) VNF.
struct VnfInstance {
  VnfInstanceId id;
  VnfId descriptor;
  HostRef host;
  VnfState state = VnfState::kRequested;
  /// Scale factor (1 = nominal). Scaling multiplies the resource footprint.
  double scale = 1.0;
};

/// Lifecycle event record for audit/bench purposes.
struct LifecycleEvent {
  VnfInstanceId instance;
  VnfState from;
  VnfState to;
  std::uint64_t sequence = 0;
};

/// Owns all VNF instances and enforces the state machine. Placement
/// (choosing `host`) happens in the orchestrator; this class tracks state.
class VnfLifecycleManager {
 public:
  /// Creates an instance in kRequested.
  VnfInstanceId create(VnfId descriptor, HostRef host);

  [[nodiscard]] const VnfInstance& instance(VnfInstanceId id) const;
  [[nodiscard]] std::size_t instance_count() const noexcept { return instances_.size(); }
  [[nodiscard]] std::size_t active_count() const noexcept;
  [[nodiscard]] const std::vector<LifecycleEvent>& events() const noexcept { return events_; }

  /// Drives one transition; kInvalidArgument when illegal.
  [[nodiscard]] Status transition(VnfInstanceId id, VnfState to);

  /// Convenience: requested -> instantiating -> active.
  [[nodiscard]] Status activate(VnfInstanceId id);
  /// Convenience: -> terminating -> terminated.
  [[nodiscard]] Status terminate(VnfInstanceId id);
  /// active -> scaling(new factor) -> active.
  [[nodiscard]] Status scale(VnfInstanceId id, double factor);
  /// active -> updating -> active (software update event).
  [[nodiscard]] Status update(VnfInstanceId id);

 private:
  VnfInstance* find(VnfInstanceId id);

  std::vector<VnfInstance> instances_;
  std::vector<LifecycleEvent> events_;
  std::uint64_t sequence_ = 0;
};

}  // namespace alvc::nfv
