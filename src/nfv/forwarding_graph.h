// Network forwarding graphs (paper §IV-A).
//
// "An NFC is defined as a set of Network Functions, packet processing order
// (simple or complex), network resource requirements, and network
// forwarding graph." Linear chains (NfcSpec) cover the "simple" order;
// this type models the complex one: a DAG of VNF nodes with a unique entry,
// one or more exits, and per-edge traffic splits (e.g. a load balancer
// fanning out to a firewall path and a DPI path).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nfv/nfc.h"
#include "nfv/vnf.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::nfv {

using alvc::util::ServiceId;
using alvc::util::Status;
using alvc::util::TenantId;
using alvc::util::VnfId;

class ForwardingGraph {
 public:
  struct Edge {
    std::size_t from;
    std::size_t to;
  };

  /// Adds a VNF node; returns its dense index.
  std::size_t add_node(VnfId function);
  /// Adds a directed processing edge between node indices.
  /// Throws std::out_of_range on bad indices.
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] VnfId function(std::size_t node) const { return nodes_.at(node); }
  [[nodiscard]] std::span<const VnfId> functions() const noexcept { return nodes_; }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// The unique node with no predecessors (call validate() first).
  [[nodiscard]] std::size_t entry() const;
  /// Nodes with no successors, ascending.
  [[nodiscard]] std::vector<std::size_t> exits() const;

  /// Structural well-formedness: non-empty, acyclic, exactly one entry,
  /// at least one exit, every node reachable from the entry, no self loops
  /// or duplicate edges.
  [[nodiscard]] Status validate() const;

  /// Topological order (validate() must pass). Deterministic: among ready
  /// nodes the smallest index goes first.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// Convenience: a linear graph from an ordered function list.
  [[nodiscard]] static ForwardingGraph linear(std::span<const VnfId> functions);

 private:
  [[nodiscard]] std::vector<std::size_t> in_degrees() const;

  std::vector<VnfId> nodes_;
  std::vector<Edge> edges_;
};

/// A chain request with a complex processing order.
struct GraphNfcSpec {
  TenantId tenant;
  std::string name;
  ForwardingGraph graph;
  double bandwidth_gbps = 1.0;
  ServiceId service;
  PriorityClass priority = PriorityClass::kHipri;

  /// The equivalent linear spec over the graph's topological order — what
  /// placement strategies consume (they place nodes; routing follows the
  /// real edges).
  [[nodiscard]] NfcSpec to_linear_spec() const;
};

}  // namespace alvc::nfv
