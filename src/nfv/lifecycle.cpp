#include "nfv/lifecycle.h"

#include <stdexcept>
#include <string>

namespace alvc::nfv {

using alvc::util::Error;
using alvc::util::ErrorCode;

bool transition_allowed(VnfState from, VnfState to) noexcept {
  switch (to) {
    case VnfState::kRequested:
      return false;  // initial state only
    case VnfState::kInstantiating:
      return from == VnfState::kRequested;
    case VnfState::kActive:
      return from == VnfState::kInstantiating || from == VnfState::kScaling ||
             from == VnfState::kUpdating;
    case VnfState::kScaling:
    case VnfState::kUpdating:
      return from == VnfState::kActive;
    case VnfState::kTerminating:
      return from == VnfState::kRequested || from == VnfState::kInstantiating ||
             from == VnfState::kActive;
    case VnfState::kTerminated:
      return from == VnfState::kTerminating;
  }
  return false;
}

VnfInstanceId VnfLifecycleManager::create(VnfId descriptor, HostRef host) {
  const VnfInstanceId id{static_cast<VnfInstanceId::value_type>(instances_.size())};
  instances_.push_back(VnfInstance{.id = id, .descriptor = descriptor, .host = host});
  return id;
}

const VnfInstance& VnfLifecycleManager::instance(VnfInstanceId id) const {
  return instances_.at(id.index());
}

std::size_t VnfLifecycleManager::active_count() const noexcept {
  std::size_t n = 0;
  for (const auto& i : instances_) {
    if (i.state == VnfState::kActive) ++n;
  }
  return n;
}

VnfInstance* VnfLifecycleManager::find(VnfInstanceId id) {
  if (id.index() >= instances_.size()) return nullptr;
  return &instances_[id.index()];
}

Status VnfLifecycleManager::transition(VnfInstanceId id, VnfState to) {
  VnfInstance* inst = find(id);
  if (inst == nullptr) {
    return Error{ErrorCode::kNotFound, "no VNF instance " + std::to_string(id.value())};
  }
  if (!transition_allowed(inst->state, to)) {
    return Error{ErrorCode::kInvalidArgument,
                 std::string("illegal transition ") + std::string(to_string(inst->state)) +
                     " -> " + std::string(to_string(to))};
  }
  events_.push_back(LifecycleEvent{id, inst->state, to, sequence_++});
  inst->state = to;
  return Status::ok();
}

Status VnfLifecycleManager::activate(VnfInstanceId id) {
  if (auto s = transition(id, VnfState::kInstantiating); !s.is_ok()) return s;
  return transition(id, VnfState::kActive);
}

Status VnfLifecycleManager::terminate(VnfInstanceId id) {
  if (auto s = transition(id, VnfState::kTerminating); !s.is_ok()) return s;
  return transition(id, VnfState::kTerminated);
}

Status VnfLifecycleManager::scale(VnfInstanceId id, double factor) {
  if (factor <= 0) return Error{ErrorCode::kInvalidArgument, "scale factor must be positive"};
  if (auto s = transition(id, VnfState::kScaling); !s.is_ok()) return s;
  VnfInstance* inst = find(id);
  if (inst == nullptr) {
    // Unreachable after a successful transition (which resolved the id),
    // but a scale must never dereference an unchecked lookup.
    return Error{ErrorCode::kInternal, "instance vanished mid-scale"};
  }
  inst->scale = factor;
  return transition(id, VnfState::kActive);
}

Status VnfLifecycleManager::update(VnfInstanceId id) {
  if (auto s = transition(id, VnfState::kUpdating); !s.is_ok()) return s;
  return transition(id, VnfState::kActive);
}

}  // namespace alvc::nfv
