#include "nfv/forwarding_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace alvc::nfv {

using alvc::util::Error;
using alvc::util::ErrorCode;

std::size_t ForwardingGraph::add_node(VnfId function) {
  nodes_.push_back(function);
  return nodes_.size() - 1;
}

void ForwardingGraph::add_edge(std::size_t from, std::size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("ForwardingGraph: edge endpoint out of range");
  }
  edges_.push_back(Edge{from, to});
}

std::vector<std::size_t> ForwardingGraph::in_degrees() const {
  std::vector<std::size_t> degree(nodes_.size(), 0);
  for (const Edge& e : edges_) ++degree[e.to];
  return degree;
}

std::size_t ForwardingGraph::entry() const {
  const auto degree = in_degrees();
  for (std::size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) return i;
  }
  throw std::logic_error("ForwardingGraph::entry on cyclic graph");
}

std::vector<std::size_t> ForwardingGraph::exits() const {
  std::vector<char> has_successor(nodes_.size(), 0);
  for (const Edge& e : edges_) has_successor[e.from] = 1;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!has_successor[i]) out.push_back(i);
  }
  return out;
}

Status ForwardingGraph::validate() const {
  if (nodes_.empty()) return Error{ErrorCode::kInvalidArgument, "forwarding graph is empty"};
  for (const Edge& e : edges_) {
    if (e.from == e.to) return Error{ErrorCode::kInvalidArgument, "self loop"};
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    for (std::size_t j = i + 1; j < edges_.size(); ++j) {
      if (edges_[i].from == edges_[j].from && edges_[i].to == edges_[j].to) {
        return Error{ErrorCode::kInvalidArgument, "duplicate edge"};
      }
    }
  }
  // Exactly one entry.
  const auto degree = in_degrees();
  std::size_t entries = 0;
  std::size_t entry_node = 0;
  for (std::size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) {
      ++entries;
      entry_node = i;
    }
  }
  if (entries != 1) {
    return Error{ErrorCode::kInvalidArgument,
                 "forwarding graph needs exactly one entry, has " + std::to_string(entries)};
  }
  // Acyclic: Kahn's algorithm consumes every node.
  const auto order = topological_order();
  if (order.size() != nodes_.size()) {
    return Error{ErrorCode::kInvalidArgument, "forwarding graph contains a cycle"};
  }
  // Reachability from the entry.
  std::vector<char> reachable(nodes_.size(), 0);
  std::queue<std::size_t> queue;
  reachable[entry_node] = 1;
  queue.push(entry_node);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const Edge& e : edges_) {
      if (e.from == v && !reachable[e.to]) {
        reachable[e.to] = 1;
        queue.push(e.to);
      }
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!reachable[i]) {
      return Error{ErrorCode::kInvalidArgument,
                   "node " + std::to_string(i) + " unreachable from the entry"};
    }
  }
  return Status::ok();
}

std::vector<std::size_t> ForwardingGraph::topological_order() const {
  auto degree = in_degrees();
  // Min-heap for determinism.
  std::priority_queue<std::size_t, std::vector<std::size_t>, std::greater<>> ready;
  for (std::size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    const std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const Edge& e : edges_) {
      if (e.from == v && --degree[e.to] == 0) ready.push(e.to);
    }
  }
  return order;  // shorter than node_count() iff cyclic
}

ForwardingGraph ForwardingGraph::linear(std::span<const VnfId> functions) {
  ForwardingGraph graph;
  for (VnfId f : functions) graph.add_node(f);
  for (std::size_t i = 0; i + 1 < functions.size(); ++i) graph.add_edge(i, i + 1);
  return graph;
}

NfcSpec GraphNfcSpec::to_linear_spec() const {
  NfcSpec spec;
  spec.tenant = tenant;
  spec.name = name;
  spec.bandwidth_gbps = bandwidth_gbps;
  spec.service = service;
  spec.priority = priority;
  for (std::size_t node : graph.topological_order()) {
    spec.functions.push_back(graph.function(node));
  }
  return spec;
}

}  // namespace alvc::nfv
