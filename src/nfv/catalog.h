// VNF catalog: the registry of deployable network functions.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "nfv/vnf.h"

namespace alvc::nfv {

class VnfCatalog {
 public:
  /// Registers a descriptor; the returned id indexes the catalog densely.
  VnfId add(VnfType type, std::string name, Resources demand, double processing_us_per_kb = 0.1,
            bool electronic_only = false);

  [[nodiscard]] std::size_t size() const noexcept { return descriptors_.size(); }
  [[nodiscard]] const VnfDescriptor& descriptor(VnfId id) const {
    return descriptors_.at(id.index());
  }
  [[nodiscard]] std::span<const VnfDescriptor> descriptors() const noexcept {
    return descriptors_;
  }

  /// First descriptor of the given type, if any.
  [[nodiscard]] std::optional<VnfId> find_by_type(VnfType type) const noexcept;

  /// A realistic default catalog. Light functions (firewall, NAT, security
  /// gateway, load balancer) fit the default optoelectronic budget
  /// (4 cores / 8 GB / 32 GB); heavy ones (DPI, IDS, cache, WAN optimiser)
  /// exceed it or are pinned electronic — mirroring §IV-D's "some VNFs'
  /// resource demand is quite large and cannot be met by optoelectronic
  /// routers".
  [[nodiscard]] static VnfCatalog make_default();

 private:
  std::vector<VnfDescriptor> descriptors_;
};

}  // namespace alvc::nfv
