// Network Function Chains (paper §IV-A).
//
// "An NFC is defined as a set of Network Functions, packet processing order
// (simple or complex), network resource requirements (node and links), and
// network forwarding graph." We model the common linear chain (the paper's
// Fig. 5 paths) with per-user/per-application scope: a chain belongs to a
// tenant, names the ordered VNFs a flow must traverse, and carries its
// bandwidth demand.
#pragma once

#include <string>
#include <vector>

#include "nfv/vnf.h"
#include "util/ids.h"

namespace alvc::nfv {

using alvc::util::NfcId;
using alvc::util::ServiceId;
using alvc::util::TenantId;
using alvc::util::VnfId;

/// QoS class of a chain's traffic aggregate. Under overload the bandwidth
/// allocator sheds kLopri aggregates first (heyp-agents' HIPRI/LOPRI
/// split); under the legacy strict ladder the class is carried but has no
/// behavioral effect.
enum class PriorityClass : std::uint8_t { kHipri = 0, kLopri = 1 };

[[nodiscard]] constexpr const char* to_string(PriorityClass cls) noexcept {
  switch (cls) {
    case PriorityClass::kHipri: return "hipri";
    case PriorityClass::kLopri: return "lopri";
  }
  return "?";
}

/// Specification of a chain as requested by a tenant (before placement).
struct NfcSpec {
  TenantId tenant;
  std::string name;
  /// Ordered catalog descriptors the flow visits.
  std::vector<VnfId> functions;
  /// Requested bandwidth for the chain's flows (Gbps).
  double bandwidth_gbps = 1.0;
  /// Service type of the VM group this chain serves (one VC hosts one NFC,
  /// §IV-C).
  ServiceId service;
  /// QoS class of the chain's aggregate (tenant-declared).
  PriorityClass priority = PriorityClass::kHipri;
};

/// Handle for a provisioned chain (assigned by the orchestrator).
struct NfcRecord {
  NfcId id;
  NfcSpec spec;
};

}  // namespace alvc::nfv
