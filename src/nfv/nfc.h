// Network Function Chains (paper §IV-A).
//
// "An NFC is defined as a set of Network Functions, packet processing order
// (simple or complex), network resource requirements (node and links), and
// network forwarding graph." We model the common linear chain (the paper's
// Fig. 5 paths) with per-user/per-application scope: a chain belongs to a
// tenant, names the ordered VNFs a flow must traverse, and carries its
// bandwidth demand.
#pragma once

#include <string>
#include <vector>

#include "nfv/vnf.h"
#include "util/ids.h"

namespace alvc::nfv {

using alvc::util::NfcId;
using alvc::util::ServiceId;
using alvc::util::TenantId;
using alvc::util::VnfId;

/// Specification of a chain as requested by a tenant (before placement).
struct NfcSpec {
  TenantId tenant;
  std::string name;
  /// Ordered catalog descriptors the flow visits.
  std::vector<VnfId> functions;
  /// Requested bandwidth for the chain's flows (Gbps).
  double bandwidth_gbps = 1.0;
  /// Service type of the VM group this chain serves (one VC hosts one NFC,
  /// §IV-C).
  ServiceId service;
};

/// Handle for a provisioned chain (assigned by the orchestrator).
struct NfcRecord {
  NfcId id;
  NfcSpec spec;
};

}  // namespace alvc::nfv
