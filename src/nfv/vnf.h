// Network functions and their virtualised descriptors (paper §IV).
//
// NFs come as middleboxes (firewall, DPI, load balancer, security gateway,
// ...); NFV turns them into VNFs deployable "when and where required". Each
// VNF type carries a resource-demand profile: §IV-D's placement rule is
// that only low-demand VNFs fit on optoelectronic routers, while heavy ones
// (e.g. DPI) must stay in the electronic domain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "topology/elements.h"
#include "util/ids.h"

namespace alvc::nfv {

using alvc::topology::Resources;
using alvc::util::VnfId;

/// Middlebox families named in the paper (§I, §IV-A) plus common extras.
enum class VnfType : std::uint8_t {
  kFirewall,
  kDeepPacketInspection,
  kLoadBalancer,
  kSecurityGateway,
  kNat,
  kIntrusionDetection,
  kProxy,
  kWanOptimizer,
  kCache,
};

[[nodiscard]] constexpr std::string_view to_string(VnfType type) noexcept {
  switch (type) {
    case VnfType::kFirewall: return "firewall";
    case VnfType::kDeepPacketInspection: return "dpi";
    case VnfType::kLoadBalancer: return "load-balancer";
    case VnfType::kSecurityGateway: return "security-gw";
    case VnfType::kNat: return "nat";
    case VnfType::kIntrusionDetection: return "ids";
    case VnfType::kProxy: return "proxy";
    case VnfType::kWanOptimizer: return "wan-optimizer";
    case VnfType::kCache: return "cache";
  }
  return "?";
}

/// Immutable template for instantiating a VNF.
struct VnfDescriptor {
  VnfId id;
  VnfType type = VnfType::kFirewall;
  std::string name;
  Resources demand;
  /// Per-byte processing latency contribution (microseconds per KB), used
  /// by the flow simulator.
  double processing_us_per_kb = 0.1;
  /// Some functions are pinned to the electronic domain regardless of
  /// resource fit (e.g. they need full server OS facilities).
  bool electronic_only = false;

  /// Whether this VNF could run on an optoelectronic router with `capacity`
  /// compute (§IV-D feasibility test).
  [[nodiscard]] bool optical_hostable(const Resources& capacity) const noexcept {
    return !electronic_only && demand.fits_within(capacity);
  }
};

}  // namespace alvc::nfv
