#include "sim/metrics.h"

#include <sstream>

namespace alvc::sim {

std::string TrafficMetrics::summary() const {
  std::ostringstream os;
  os << "flows=" << flows << " intra=" << intra_fraction() << " unroutable=" << unroutable_flows
     << " mean_hops=" << hops.mean() << " mean_latency_us=" << latency_us.mean()
     << " mean_conversions=" << conversions.mean() << " energy_j=" << total_energy_j;
  if (switch_utilization.count() > 0) {
    os << " mean_util=" << switch_utilization.mean() << " peak_util=" << peak_utilization;
  }
  return os.str();
}

}  // namespace alvc::sim
