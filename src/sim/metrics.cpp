#include "sim/metrics.h"

#include <sstream>

namespace alvc::sim {

std::string TrafficMetrics::summary() const {
  std::ostringstream os;
  os << "flows=" << flows << " intra=" << intra_fraction() << " unroutable=" << unroutable_flows
     << " mean_hops=" << hops.mean() << " mean_latency_us=" << latency_us.mean()
     << " mean_conversions=" << conversions.mean() << " energy_j=" << total_energy_j;
  if (switch_utilization.count() > 0) {
    os << " mean_util=" << switch_utilization.mean() << " peak_util=" << peak_utilization;
    if (has_hottest_switch()) os << " hottest_switch=" << hottest_switch;
  }
  return os.str();
}

std::string TrafficMetrics::csv_header() {
  return "flows,intra_fraction,unroutable,mean_hops,mean_latency_us,mean_conversions,"
         "total_bytes,energy_j,mean_util,peak_util,hottest_switch";
}

std::string TrafficMetrics::csv_row() const {
  std::ostringstream os;
  os << flows << ',' << intra_fraction() << ',' << unroutable_flows << ',' << hops.mean() << ','
     << latency_us.mean() << ',' << conversions.mean() << ',' << total_bytes << ','
     << total_energy_j << ',' << switch_utilization.mean() << ',' << peak_utilization << ',';
  // SIZE_MAX is an in-memory sentinel, not a vertex id; never leak it into
  // a file someone will plot.
  if (has_hottest_switch()) os << hottest_switch;
  return os.str();
}

std::string TrafficMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"flows\":" << flows << ",\"intra_fraction\":" << intra_fraction()
     << ",\"unroutable\":" << unroutable_flows << ",\"mean_hops\":" << hops.mean()
     << ",\"mean_latency_us\":" << latency_us.mean()
     << ",\"mean_conversions\":" << conversions.mean() << ",\"total_bytes\":" << total_bytes
     << ",\"energy_j\":" << total_energy_j << ",\"mean_util\":" << switch_utilization.mean()
     << ",\"peak_util\":" << peak_utilization << ",\"hottest_switch\":";
  if (has_hottest_switch()) {
    os << hottest_switch;
  } else {
    os << "null";
  }
  os << '}';
  return os.str();
}

}  // namespace alvc::sim
