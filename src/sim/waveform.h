// Seeded waveform primitives shared by load generation and demand modeling.
//
// Two client families consume the same traffic shapes:
//
//   * faults::OverloadInjector emits *discrete* provision/teardown events
//     (flash crowds, diurnal ramps, Poisson churn) onto a sim::EventQueue;
//   * elastic::DemandModel evaluates the *continuous* per-chain demand the
//     scaling loop reacts to (diurnal waves, flash pulses, churn noise).
//
// Both must agree on the math — a flash crowd the injector schedules at t
// is the same flash the demand model ramps through at t — so the timing
// and shape primitives live here, in one header, and each client composes
// them. The discrete helpers reproduce OverloadInjector's original
// arithmetic exactly (same expression shapes, same RNG draw order), which
// is what keeps the 20-seed overload soak byte-identical across the
// refactor.
//
// Everything here is a pure function of its arguments; the only state is
// the caller-owned util::Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace alvc::sim {

// ---- discrete timing (event-schedule generation) -------------------------

/// Arrival times of an `n`-burst starting at `at`, spaced `spacing_s`
/// apart. Times accumulate (t += spacing) rather than multiply out, so
/// schedules built before this helper existed stay bit-identical.
[[nodiscard]] inline std::vector<double> burst_arrival_times(std::size_t n, double at,
                                                             double spacing_s) {
  std::vector<double> times;
  times.reserve(n);
  double t = at;
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(t);
    if (i + 1 < n) t += spacing_s;
  }
  return times;
}

/// Half-cycle slot width of a diurnal ramp over `spec_count` members: the
/// first half of the period admits one member per slot, the second half
/// retires one per slot, with one slot of margin at each end.
[[nodiscard]] inline double diurnal_slot_s(double period_s, std::size_t spec_count) {
  return period_s / (2.0 * static_cast<double>(spec_count + 1));
}

/// Arrival time of member `i` within the cycle starting at `cycle_start_s`.
[[nodiscard]] inline double diurnal_up_s(double cycle_start_s, double slot_s, std::size_t i) {
  return cycle_start_s + slot_s * static_cast<double>(i + 1);
}

/// Departure time of member `i` within the cycle starting at
/// `cycle_start_s` (mirrors the arrival, half a period later).
[[nodiscard]] inline double diurnal_down_s(double cycle_start_s, double period_s, double slot_s,
                                           std::size_t i) {
  return cycle_start_s + period_s / 2 + slot_s * static_cast<double>(i + 1);
}

/// Drives `on_arrival(t)` at seeded Poisson arrival times with rate
/// `rate_per_s` until `horizon_s`. The callback may draw further values
/// from the same `rng` (e.g. to pick which spec arrives); the inter-arrival
/// draw happens strictly after the callback returns, preserving the
/// historical draw order of OverloadInjector::lopri_churn.
template <typename Fn>
void poisson_arrivals(alvc::util::Rng& rng, double rate_per_s, double horizon_s, Fn&& on_arrival) {
  double t = rng.exponential(rate_per_s);
  while (t < horizon_s) {
    on_arrival(t);
    t += rng.exponential(rate_per_s);
  }
}

// ---- continuous shapes (demand evaluation) -------------------------------

/// Diurnal triangle wave in [0, 1]: climbs through the first half of each
/// period and falls through the second — the continuous twin of the
/// member-by-member ramp above. 0 at cycle boundaries, 1 at mid-period.
[[nodiscard]] inline double diurnal_wave(double t_s, double period_s) {
  if (period_s <= 0) return 0;
  double phase = std::fmod(t_s, period_s) / period_s;
  if (phase < 0) phase += 1.0;
  return phase < 0.5 ? phase * 2.0 : 2.0 - phase * 2.0;
}

/// Flash-crowd pulse in [0, 1]: zero before `at_s`, linear rise over
/// `ramp_s`, flat top for `hold_s`, linear fall over `ramp_s`, zero after.
/// A non-positive `ramp_s` makes the edges vertical.
[[nodiscard]] inline double flash_pulse(double t_s, double at_s, double ramp_s, double hold_s) {
  const double since = t_s - at_s;
  if (since < 0) return 0;
  if (ramp_s <= 0) return since <= hold_s ? 1.0 : 0.0;
  if (since < ramp_s) return since / ramp_s;
  if (since < ramp_s + hold_s) return 1.0;
  const double falling = since - ramp_s - hold_s;
  if (falling < ramp_s) return 1.0 - falling / ramp_s;
  return 0;
}

/// Stateless hash noise in [0, 1): a splitmix64 finalizer over (seed,
/// bucket), so adversarial churn is reproducible without carrying RNG
/// state per chain — demand stays a pure function of (seed, chain, time).
[[nodiscard]] inline double hash_noise(std::uint64_t seed, std::uint64_t bucket) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (bucket + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace alvc::sim
