#include "sim/trace.h"

namespace alvc::sim {

namespace {
const std::vector<std::string> kHeader = {
    "flow", "src_vm", "dst_vm", "bytes",        "arrival_s", "hops",
    "oeo",  "latency_us", "energy_j", "intra_cluster", "routable"};
}  // namespace

void TraceRecorder::emit(alvc::util::CsvWriter& writer) const {
  for (const FlowRecord& r : records_) {
    writer.row_values(r.id.value(), r.src.value(), r.dst.value(), r.bytes, r.arrival_s, r.hops,
                      r.conversions, r.latency_us, r.energy_j, r.intra_cluster ? 1 : 0,
                      r.routable ? 1 : 0);
  }
}

void TraceRecorder::write_csv(const std::string& path) const {
  alvc::util::CsvWriter writer(path, kHeader);
  emit(writer);
}

std::string TraceRecorder::to_csv() const {
  alvc::util::CsvWriter writer(kHeader);
  emit(writer);
  return writer.str();
}

}  // namespace alvc::sim
