// Synthetic traffic generation (DESIGN.md §2: substitute for production
// traces).
//
// Flows arrive as a Poisson process; sizes are bounded-Pareto (heavy tail,
// the standard DCN assumption); endpoints are VM pairs drawn with a
// tunable service-locality bias: with probability `locality` the
// destination shares the source's service type (§III-A's "machines
// offering identical services are likely to interact with each other more
// often").
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.h"
#include "util/ids.h"
#include "util/rng.h"

namespace alvc::sim {

using alvc::util::FlowId;
using alvc::util::VmId;

struct Flow {
  FlowId id;
  VmId src;
  VmId dst;
  double bytes = 0;
  double arrival_s = 0;
};

struct WorkloadParams {
  double arrival_rate_per_s = 1000.0;  // Poisson rate
  double mean_duration_s = 1.0;        // horizon = flows/rate
  double pareto_alpha = 1.3;           // size tail index
  double min_bytes = 1e3;              // 1 KB mice ...
  double max_bytes = 1e9;              // ... to 1 GB elephants
  double locality = 0.8;               // P(dst service == src service)
  std::uint64_t seed = 1;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const alvc::topology::DataCenterTopology& topo, WorkloadParams params);

  /// Next flow in arrival order. Deterministic in the seed.
  [[nodiscard]] Flow next();

  /// Generates `count` flows.
  [[nodiscard]] std::vector<Flow> generate(std::size_t count);

 private:
  [[nodiscard]] VmId pick_destination(VmId src);

  const alvc::topology::DataCenterTopology* topo_;
  WorkloadParams params_;
  alvc::util::Rng rng_;
  double clock_s_ = 0;
  FlowId::value_type next_id_ = 0;
  /// VMs bucketed by service for locality-biased destination draws.
  std::vector<std::vector<VmId>> by_service_;
};

}  // namespace alvc::sim
