// Flow-level simulator over the AL-VC architecture.
//
// Two modes:
//   * simulate_traffic — plain VM-to-VM traffic over the clustered DC
//     (FIG1: intra- vs inter-cluster fractions, hop counts, energy);
//   * simulate_chain_traffic — per-flow traversal of a provisioned NFC
//     (FIG8: conversions and energy as placements change).
//
// Latency model (flow level, no queueing): per-hop propagation+switching
// latency by domain, plus per-VNF processing proportional to flow size,
// plus a fixed penalty per O/E/O conversion. Energy: per-byte-hop transport
// by domain plus per-byte conversion energy (OeoCostModel).
#pragma once

#include <span>

#include "cluster/cluster_manager.h"
#include "orchestrator/orchestrator.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "sim/workload.h"

namespace alvc::sim {

struct LatencyModel {
  double optical_hop_us = 0.5;
  double electronic_hop_us = 5.0;
  double conversion_us = 10.0;
  /// Optional congestion model: when true, each traversed switch adds an
  /// M/M/1-style queueing delay of service_us * rho / (1 - rho), where rho
  /// is the switch's offered utilization over the run (capped below 1).
  /// Computed in a second pass once all flows are routed.
  bool mm1_queueing = false;
  double switch_service_us = 1.0;
  double max_utilization = 0.95;
};

struct SimulationConfig {
  WorkloadParams workload;
  LatencyModel latency;
  alvc::orchestrator::OeoCostModel energy;
  std::size_t flow_count = 10'000;
};

/// VM-to-VM traffic over the clustered topology. Flows between VMs of the
/// same cluster ride that cluster's AL; inter-cluster flows cross ALs (we
/// route them over the full switch graph and count their extra cost).
/// `trace` (optional) captures every flow's outcome for CSV export.
[[nodiscard]] TrafficMetrics simulate_traffic(const alvc::cluster::ClusterManager& clusters,
                                              const SimulationConfig& config,
                                              TraceRecorder* trace = nullptr);

/// Pushes flows round-robin through every provisioned chain of the
/// orchestrator and accounts conversions/energy/latency per the chain's
/// route and placement. `trace` (optional) captures per-flow records.
[[nodiscard]] TrafficMetrics simulate_chain_traffic(
    const alvc::orchestrator::NetworkOrchestrator& orch, const SimulationConfig& config,
    TraceRecorder* trace = nullptr);

}  // namespace alvc::sim
