#include "sim/workload.h"

#include <stdexcept>

namespace alvc::sim {

WorkloadGenerator::WorkloadGenerator(const alvc::topology::DataCenterTopology& topo,
                                     WorkloadParams params)
    : topo_(&topo), params_(params), rng_(params.seed) {
  if (topo.vm_count() < 2) {
    throw std::invalid_argument("WorkloadGenerator: need at least two VMs");
  }
  if (params.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("WorkloadGenerator: arrival rate must be positive");
  }
  by_service_.resize(topo.service_count());
  for (const auto& vm : topo.vms()) by_service_[vm.service.index()].push_back(vm.id);
}

VmId WorkloadGenerator::pick_destination(VmId src) {
  const auto& src_vm = topo_->vm(src);
  const auto& same = by_service_[src_vm.service.index()];
  // Locality draw, but only if the source's service has another member.
  if (same.size() > 1 && rng_.bernoulli(params_.locality)) {
    for (;;) {
      const VmId dst = same[rng_.uniform_index(same.size())];
      if (dst != src) return dst;
    }
  }
  for (;;) {
    const VmId dst{static_cast<VmId::value_type>(rng_.uniform_index(topo_->vm_count()))};
    if (dst != src) return dst;
  }
}

Flow WorkloadGenerator::next() {
  clock_s_ += rng_.exponential(params_.arrival_rate_per_s);
  const VmId src{static_cast<VmId::value_type>(rng_.uniform_index(topo_->vm_count()))};
  Flow flow;
  flow.id = FlowId{next_id_++};
  flow.src = src;
  flow.dst = pick_destination(src);
  flow.bytes = rng_.bounded_pareto(params_.pareto_alpha, params_.min_bytes, params_.max_bytes);
  flow.arrival_s = clock_s_;
  return flow;
}

std::vector<Flow> WorkloadGenerator::generate(std::size_t count) {
  std::vector<Flow> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) flows.push_back(next());
  return flows;
}

}  // namespace alvc::sim
