#include "sim/simulator.h"

#include <unordered_map>
#include <unordered_set>

#include "graph/shortest_path.h"

namespace alvc::sim {

using alvc::cluster::VirtualCluster;
using alvc::topology::DataCenterTopology;
using alvc::util::ClusterId;
using alvc::util::VmId;

namespace {

/// Per-flow cost along a switch-vertex walk.
struct WalkCost {
  std::size_t hops = 0;
  std::size_t conversions = 0;  // mid-path O->E->O round trips
  double latency_us = 0;
  double energy_j = 0;
};

WalkCost cost_of_walk(const DataCenterTopology& topo, std::span<const std::size_t> walk,
                      double bytes, const LatencyModel& latency,
                      const alvc::orchestrator::OeoCostModel& energy) {
  WalkCost cost;
  if (walk.size() < 2) return cost;
  // Count hop domains and domain transitions. The walk starts and ends at
  // ToRs (electronic); every optical->electronic->optical round trip in the
  // middle is a conversion, and the two endpoint crossings are fixed.
  std::size_t o_to_e = 0;
  std::size_t e_to_o = 0;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    const bool from_optical = topo.is_ops_vertex(walk[i]);
    const bool to_optical = topo.is_ops_vertex(walk[i + 1]);
    ++cost.hops;
    if (from_optical && to_optical) {
      cost.latency_us += latency.optical_hop_us;
      cost.energy_j += bytes * energy.optical_joules_per_byte_hop;
    } else {
      cost.latency_us += latency.electronic_hop_us;
      cost.energy_j += bytes * energy.electronic_joules_per_byte_hop;
    }
    if (from_optical && !to_optical) ++o_to_e;
    if (!from_optical && to_optical) ++e_to_o;
  }
  // Mid-path conversions: each O->E that later returns to O. The final
  // descent to the egress ToR is an endpoint crossing, not a conversion.
  // Callers add the conversion latency/energy themselves (chain traffic
  // overrides the count with the placement-derived one).
  cost.conversions = (o_to_e > 0) ? o_to_e - 1 : 0;
  return cost;
}

}  // namespace

TrafficMetrics simulate_traffic(const alvc::cluster::ClusterManager& clusters,
                                const SimulationConfig& config, TraceRecorder* trace) {
  const DataCenterTopology& topo = clusters.topology();
  TrafficMetrics metrics;
  WorkloadGenerator generator(topo, config.workload);

  // Map each VM to its cluster (if any).
  std::unordered_map<VmId, ClusterId> vm_cluster;
  for (const VirtualCluster* vc : clusters.clusters()) {
    for (VmId vm : vc->vms) vm_cluster.emplace(vm, vc->id);
  }

  // Cache shortest-path trees per source ToR over the full switch graph
  // (inter-cluster flows) — the DC is static during a run.
  const auto& g = topo.switch_graph();
  std::unordered_map<std::size_t, alvc::graph::PathResult> bfs_cache;
  const auto tree_from = [&](std::size_t src) -> const alvc::graph::PathResult& {
    auto it = bfs_cache.find(src);
    if (it == bfs_cache.end()) {
      it = bfs_cache.emplace(src, alvc::graph::bfs(g, src)).first;
    }
    return it->second;
  };

  // Per-switch byte counters for utilization accounting, plus (only when
  // the queueing model is on) each routed flow's path, aligned with the
  // latency_us sample order.
  std::vector<double> vertex_bytes(g.vertex_count(), 0.0);
  std::vector<std::vector<std::size_t>> flow_paths;
  const bool keep_paths = config.latency.mm1_queueing;

  EventQueue queue;
  for (std::size_t i = 0; i < config.flow_count; ++i) {
    const Flow flow = generator.next();
    queue.schedule(flow.arrival_s, [&, flow] {
      ++metrics.flows;
      metrics.total_bytes += flow.bytes;
      const auto src_it = vm_cluster.find(flow.src);
      const auto dst_it = vm_cluster.find(flow.dst);
      const bool intra = src_it != vm_cluster.end() && dst_it != vm_cluster.end() &&
                         src_it->second == dst_it->second;
      if (intra) ++metrics.intra_cluster_flows;

      FlowRecord record{.id = flow.id,
                        .src = flow.src,
                        .dst = flow.dst,
                        .bytes = flow.bytes,
                        .arrival_s = flow.arrival_s,
                        .intra_cluster = intra};
      const std::size_t src_v = topo.tor_vertex(topo.tor_of_vm(flow.src));
      const std::size_t dst_v = topo.tor_vertex(topo.tor_of_vm(flow.dst));
      if (src_v == dst_v) {
        // Same rack: one electronic hop, no core traversal.
        if (keep_paths) flow_paths.push_back({src_v});
        metrics.hops.add(1);
        metrics.latency_us.add(config.latency.electronic_hop_us);
        metrics.conversions.add(0);
        metrics.total_energy_j +=
            flow.bytes * config.energy.electronic_joules_per_byte_hop;
        if (trace != nullptr) {
          record.hops = 1;
          record.latency_us = config.latency.electronic_hop_us;
          record.energy_j = flow.bytes * config.energy.electronic_joules_per_byte_hop;
          trace->record(record);
        }
        return;
      }
      const auto& tree = tree_from(src_v);
      const auto path = alvc::graph::extract_path(tree, dst_v);
      if (!path) {
        ++metrics.unroutable_flows;
        if (trace != nullptr) {
          record.routable = false;
          trace->record(record);
        }
        return;
      }
      for (std::size_t v : *path) vertex_bytes[v] += flow.bytes;
      if (keep_paths) flow_paths.push_back(*path);
      const WalkCost cost =
          cost_of_walk(topo, *path, flow.bytes, config.latency, config.energy);
      const double latency_us = cost.latency_us + static_cast<double>(cost.conversions) *
                                                      config.latency.conversion_us;
      const double energy_j = cost.energy_j + static_cast<double>(cost.conversions) * flow.bytes *
                                                  config.energy.conversion_joules_per_byte;
      metrics.hops.add(static_cast<double>(cost.hops));
      metrics.latency_us.add(latency_us);
      metrics.conversions.add(static_cast<double>(cost.conversions));
      metrics.total_energy_j += energy_j;
      if (trace != nullptr) {
        record.hops = cost.hops;
        record.conversions = cost.conversions;
        record.latency_us = latency_us;
        record.energy_j = energy_j;
        trace->record(record);
      }
    });
  }
  queue.run();

  // Utilization: offered load per switch over the run horizon vs its port
  // capacity. The horizon is the simulated wall clock (last arrival).
  const double duration_s = std::max(queue.now(), 1e-9);
  std::vector<double> vertex_util(vertex_bytes.size(), 0.0);
  for (std::size_t v = 0; v < vertex_bytes.size(); ++v) {
    if (vertex_bytes[v] <= 0) continue;
    const double port_gbps = topo.is_ops_vertex(v)
                                 ? topo.ops(topo.vertex_to_ops(v)).port_bandwidth_gbps
                                 : topo.tor(topo.vertex_to_tor(v)).port_bandwidth_gbps;
    vertex_util[v] = (vertex_bytes[v] * 8.0) / (duration_s * port_gbps * 1e9);
    metrics.switch_utilization.add(vertex_util[v]);
    if (vertex_util[v] > metrics.peak_utilization) {
      metrics.peak_utilization = vertex_util[v];
      metrics.hottest_switch = v;
    }
  }
  // Second pass: M/M/1-style queueing delays from the now-known per-switch
  // utilization. Latency samples are recomputed per flow; aggregates only
  // (traces keep their congestion-free figures).
  if (config.latency.mm1_queueing && !flow_paths.empty()) {
    alvc::util::SampleSet queued_latency;
    std::size_t path_index = 0;
    const auto& base = metrics.latency_us.samples();
    for (double base_latency : base) {
      double queue_delay = 0;
      if (path_index < flow_paths.size()) {
        for (std::size_t v : flow_paths[path_index]) {
          const double rho = std::min(vertex_util[v], config.latency.max_utilization);
          if (rho > 0) {
            queue_delay += config.latency.switch_service_us * rho / (1.0 - rho);
          }
        }
      }
      queued_latency.add(base_latency + queue_delay);
      ++path_index;
    }
    metrics.latency_us = std::move(queued_latency);
  }
  return metrics;
}

TrafficMetrics simulate_chain_traffic(const alvc::orchestrator::NetworkOrchestrator& orch,
                                      const SimulationConfig& config, TraceRecorder* trace) {
  TrafficMetrics metrics;
  const auto chains = orch.chains();
  if (chains.empty()) return metrics;
  const auto& topo = orch.clusters().topology();

  alvc::util::Rng rng(config.workload.seed);
  EventQueue queue;
  double clock = 0;
  for (std::size_t i = 0; i < config.flow_count; ++i) {
    clock += rng.exponential(config.workload.arrival_rate_per_s);
    const auto* chain = chains[i % chains.size()];
    const double bytes = rng.bounded_pareto(config.workload.pareto_alpha,
                                            config.workload.min_bytes, config.workload.max_bytes);
    queue.schedule(clock, [&, chain, bytes] {
      ++metrics.flows;
      ++metrics.intra_cluster_flows;  // chain traffic is slice-internal by construction
      metrics.total_bytes += bytes;
      WalkCost cost = cost_of_walk(topo, chain->route.vertices, bytes, config.latency,
                                   config.energy);
      // The placement-derived conversion count is authoritative (it knows
      // same-server runs); walk-derived counts are for plain traffic.
      cost.conversions = chain->placement.conversions.mid_chain;
      // VNF processing time scales with flow size.
      double processing_us = 0;
      const auto& catalog = orch.cloud().catalog();
      for (alvc::util::VnfId fn : chain->record.spec.functions) {
        processing_us += catalog.descriptor(fn).processing_us_per_kb * (bytes / 1024.0);
      }
      const double latency_us =
          cost.latency_us +
          static_cast<double>(cost.conversions) * config.latency.conversion_us + processing_us;
      const double energy_j =
          cost.energy_j + static_cast<double>(cost.conversions) * bytes *
                              config.energy.conversion_joules_per_byte;
      metrics.hops.add(static_cast<double>(cost.hops));
      metrics.latency_us.add(latency_us);
      metrics.conversions.add(static_cast<double>(cost.conversions));
      metrics.total_energy_j += energy_j;
      if (trace != nullptr) {
        trace->record(FlowRecord{.id = alvc::util::FlowId{static_cast<
                                     alvc::util::FlowId::value_type>(metrics.flows - 1)},
                                 .bytes = bytes,
                                 .arrival_s = queue.now(),
                                 .hops = cost.hops,
                                 .conversions = cost.conversions,
                                 .latency_us = latency_us,
                                 .energy_j = energy_j,
                                 .intra_cluster = true});
      }
    });
  }
  queue.run();
  return metrics;
}

}  // namespace alvc::sim
