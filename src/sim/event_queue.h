// Discrete-event simulation core.
//
// A classic priority-queue DES: events are (time, sequence, action);
// sequence numbers break ties deterministically so runs are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace alvc::sim {

using SimTime = double;  // seconds

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Action action);
  /// Schedules `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action) { schedule(now_ + delay, std::move(action)); }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Pops and runs the earliest event; returns false when empty.
  bool step();

  /// Runs until empty or `until` (exclusive); returns events processed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::infinity());

 private:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace alvc::sim
