// Metric collection for simulation runs.
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.h"

namespace alvc::sim {

/// Aggregated results of one traffic simulation.
struct TrafficMetrics {
  std::uint64_t flows = 0;
  std::uint64_t intra_cluster_flows = 0;  // src and dst share a service/VC
  std::uint64_t unroutable_flows = 0;
  alvc::util::SampleSet hops;
  alvc::util::SampleSet latency_us;
  alvc::util::SampleSet conversions;   // O/E/O per flow
  double total_bytes = 0;
  double total_energy_j = 0;
  /// Per-switch offered load over the run as a fraction of port capacity
  /// (one sample per switch that carried at least one flow).
  alvc::util::SampleSet switch_utilization;
  double peak_utilization = 0;
  /// Switch-graph vertex with the highest utilization (or SIZE_MAX).
  std::size_t hottest_switch = static_cast<std::size_t>(-1);

  [[nodiscard]] double intra_fraction() const noexcept {
    return flows == 0 ? 0.0 : static_cast<double>(intra_cluster_flows) / static_cast<double>(flows);
  }
  /// True when at least one switch carried traffic, i.e. hottest_switch is a
  /// real vertex rather than the SIZE_MAX sentinel.
  [[nodiscard]] bool has_hottest_switch() const noexcept {
    return hottest_switch != static_cast<std::size_t>(-1);
  }
  [[nodiscard]] std::string summary() const;
  /// Header matching csv_row(); one fixed column set, sentinel-safe.
  [[nodiscard]] static std::string csv_header();
  /// One CSV row; hottest_switch is left empty when it is the sentinel.
  [[nodiscard]] std::string csv_row() const;
  /// Single JSON object; hottest_switch is null when it is the sentinel.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace alvc::sim
