// Per-flow trace recording.
//
// The simulators aggregate by default; attaching a TraceRecorder captures
// every flow's outcome so experiments can be re-plotted (CDFs, scatter) or
// archived without re-running. Exports to CSV via util::CsvWriter.
#pragma once

#include <string>
#include <vector>

#include "util/csv.h"
#include "util/ids.h"

namespace alvc::sim {

struct FlowRecord {
  alvc::util::FlowId id;
  alvc::util::VmId src;
  alvc::util::VmId dst;
  double bytes = 0;
  double arrival_s = 0;
  std::size_t hops = 0;
  std::size_t conversions = 0;
  double latency_us = 0;
  double energy_j = 0;
  bool intra_cluster = false;
  bool routable = true;
};

class TraceRecorder {
 public:
  /// Pre-sizes the buffer; records beyond `capacity_hint` still append.
  explicit TraceRecorder(std::size_t capacity_hint = 0) { records_.reserve(capacity_hint); }

  void record(FlowRecord record) { records_.push_back(record); }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const std::vector<FlowRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  /// Writes all records to `path` as CSV (header + one row per flow).
  void write_csv(const std::string& path) const;
  /// In-memory CSV (tests, piping).
  [[nodiscard]] std::string to_csv() const;

 private:
  void emit(alvc::util::CsvWriter& writer) const;

  std::vector<FlowRecord> records_;
};

}  // namespace alvc::sim
