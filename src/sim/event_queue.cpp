#include "sim/event_queue.h"

#include <stdexcept>

#include "telemetry/telemetry.h"

namespace alvc::sim {

void EventQueue::schedule(SimTime at, Action action) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling into the past");
  heap_.push(Entry{at, next_sequence_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast on the known-safe
  // pattern is avoidable: copy the action handle instead.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  // Every dispatched event advances the tracer's logical clock, so spans
  // opened inside handlers carry simulation time (bit-reproducible traces).
  ALVC_TELEMETRY_SET_TIME_S(now_);
  ++processed_;
  entry.action();
  return true;
}

std::uint64_t EventQueue::run(SimTime until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().time < until) {
    step();
    ++n;
  }
  return n;
}

}  // namespace alvc::sim
