// alvc_analyze: whole-program lock-order and determinism analyzer.
//
// Four passes over the linked per-TU models (model.h):
//
//   lock-cycle           the lock-order graph (nodes: `Class::member`
//                        mutexes; edges: nested RAII acquisitions plus
//                        transitive acquisitions through the call graph)
//                        must be acyclic — a cycle is a potential deadlock.
//   lock-held-blocking   no blocking call (Executor submit/wait_all,
//                        condition-variable waits that pin a second lock,
//                        sleeps, stream I/O, control-plane entry points)
//                        while any lock is held.
//   unordered-escape     iteration over an unordered container must not
//                        escape in hash order: a range-for over an
//                        unordered_map/set whose body feeds an
//                        order-preserving sink (push_back/append/<<) with no
//                        std::sort afterwards is nondeterministic output.
//   layering-call        call-graph layering: a layer may only call
//                        downwards (util < telemetry < graph < topology <
//                        cluster < nfv < sdn < orchestrator < io/sim/
//                        faults/core < elastic), mirroring alvc_lint's
//                        include rules at call granularity.
//
// A finding on line N is waived by an `alvc-analyze: allow(<pass>)` comment
// on that line ("*" waives every pass). The driver (main.cpp) additionally
// applies a committed baseline file; the tree's baseline is empty and must
// stay empty.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model.h"

namespace alvc::analyze {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string pass;
  std::string message;
};

/// Formats a finding as "path:line: [pass] message".
[[nodiscard]] std::string to_string(const Finding& finding);

/// Run statistics, emitted by the driver as a JSON artifact so CI can track
/// analyzer coverage over time.
struct Stats {
  std::size_t tus = 0;
  std::size_t lines = 0;
  std::size_t functions = 0;
  std::size_t mutexes = 0;
  std::size_t lock_sites = 0;
  std::size_t call_sites = 0;
  std::size_t lock_edges = 0;
  std::size_t cycles = 0;
  std::size_t findings = 0;
  std::size_t suppressed = 0;
};

/// One edge of the linked lock-order graph, exported for the runtime
/// LockRank table test and for diagnostics.
struct LockEdge {
  std::string from;  // `Class::member` acquired first
  std::string to;    // acquired while `from` is held
  std::string file;
  std::size_t line = 0;
  std::string via;   // qualified function the edge was observed in
};

class Analyzer {
 public:
  /// Parses and registers one translation unit.
  void add_source(const std::string& path, const std::string& content);

  struct Result {
    std::vector<Finding> findings;    // unsuppressed, sorted by (file, line)
    std::vector<Finding> suppressed;  // waived by allow() comments
    std::vector<LockEdge> edges;      // full lock-order graph
    Stats stats;
  };

  /// Links all registered TUs and runs every pass.
  [[nodiscard]] Result run() const;

 private:
  std::vector<TuModel> tus_;
};

}  // namespace alvc::analyze
