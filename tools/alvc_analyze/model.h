// alvc_analyze per-TU model: what the heuristic parser (parse.cpp) extracts
// from one translation unit before the whole-program link (analyze.cpp).
//
// The parser is deliberately not a C++ front end. It reuses the alvc_lint
// comment/string stripper, tracks namespace/class/function scopes by brace
// depth, and pattern-matches the narrow idioms this codebase actually uses:
// RAII lock guards, `Class::member` mutex declarations, range-for loops, and
// qualified or simple-name calls. Anything it cannot resolve it drops rather
// than guesses — the analyzer's contract is "no false negatives on the
// idioms we write", not "sound for arbitrary C++".
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace alvc::analyze {

/// A mutex-typed declaration: class member (`cls` nonempty) or
/// namespace-scope global (`cls` empty). Identity used in the lock-order
/// graph is `cls::name` (or `::name` for globals).
struct MutexDecl {
  std::string cls;
  std::string name;
  std::string file;
  std::size_t line = 0;
  bool shared = false;  // std::shared_mutex
};

/// An unordered container declaration visible program-wide (class member or
/// namespace-scope). Used by the determinism pass to decide whether a
/// range-for iterates in hash order.
struct UnorderedDecl {
  std::string cls;
  std::string name;
  std::size_t line = 0;
};

/// One RAII acquisition site. scoped_lock may acquire several mutexes
/// atomically (std::lock), so `exprs` is a list and no ordering edges are
/// drawn between its own members.
struct LockAcquisition {
  std::vector<std::string> exprs;  // raw mutex expressions, as written
  std::size_t line = 0;
};

/// A second acquisition made while `held_expr` is still held — the direct
/// source of lock-order edges.
struct NestedLock {
  std::string held_expr;
  std::string acquired_expr;
  std::size_t line = 0;
};

/// A call site with the raw lock expressions held at that point. `name` is
/// the callee as written (possibly qualified `a::b::c`); resolution against
/// the program-wide function registry happens at link time.
struct CallSite {
  std::string name;
  bool member_call = false;  // written obj.name(...) or obj->name(...)
  std::size_t line = 0;
  std::vector<std::string> held;
};

/// A range-for whose range expression is a plain identifier (possibly
/// member-accessed). The determinism pass flags it when the identifier
/// resolves to an unordered container, the body reaches an order-preserving
/// sink, and no std::sort follows in the same function.
struct UnorderedLoop {
  std::string ident;
  std::size_t line = 0;
  bool has_sink = false;        // push_back / emplace_back / append / <<
  std::size_t sink_line = 0;
};

struct FunctionModel {
  std::string qualified;  // namespaces + class + name, "::"-joined
  std::string cls;        // nearest enclosing class, "" for free functions
  std::string simple;     // last name component
  std::string file;
  std::size_t line = 0;
  std::vector<LockAcquisition> locks;
  std::vector<NestedLock> nested;
  std::vector<CallSite> calls;
  std::vector<UnorderedLoop> loops;
  std::vector<std::size_t> sort_lines;     // std::sort / stable_sort sites
  std::set<std::string> local_unordered;   // body-local unordered containers
  std::set<std::string> local_callables;   // `auto name = [...]` lambdas: calls
                                           // to these never resolve program-wide
};

struct TuModel {
  std::string path;
  std::size_t lines = 0;
  std::vector<MutexDecl> mutexes;
  std::vector<UnorderedDecl> unordered;
  std::vector<FunctionModel> functions;
  // line -> passes waived by an `alvc-analyze: allow(<pass>)` comment.
  std::map<std::size_t, std::set<std::string>> allows;
};

/// Parses one translation unit into its model. Never throws on weird input:
/// unparseable constructs degrade to unmodeled code, not errors.
[[nodiscard]] TuModel parse_tu(const std::string& path, const std::string& content);

}  // namespace alvc::analyze
