// Whole-program link and passes for alvc_analyze. See analyze.h for the
// pass contracts. Everything here iterates sorted containers (std::map /
// std::set) on purpose: the analyzer's own output is covered by its own
// determinism pass, and findings must be byte-stable across runs.
#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace alvc::analyze {
namespace {

// Layer ranks, mirroring alvc_lint's include rules. Layers above the
// orchestrator (io, sim, faults, core) share one application rank; the
// elastic control loop sits above even those — nothing below may call it
// (it is driven from outside via the ChaosParams tick hook).
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"util", 0},   {"telemetry", 1}, {"graph", 2}, {"topology", 3},
      {"cluster", 4}, {"nfv", 5},      {"sdn", 6},   {"orchestrator", 7},
      {"io", 8},     {"sim", 8},       {"faults", 8}, {"core", 8},
      {"elastic", 9}};
  return kRanks;
}

/// Layer name when `path` is under src/<layer>/, else "".
std::string src_layer(const std::string& path) {
  const std::size_t at = path.rfind("src/");
  if (at == std::string::npos) return "";
  const std::size_t begin = at + 4;
  const std::size_t end = path.find('/', begin);
  if (end == std::string::npos) return "";
  const std::string layer = path.substr(begin, end - begin);
  return layer_ranks().count(layer) > 0 ? layer : "";
}

std::string last_component(const std::string& name) {
  const std::size_t at = name.rfind("::");
  return at == std::string::npos ? name : name.substr(at + 2);
}

/// Trailing identifier of a raw mutex expression ("other.csr_mutex_" ->
/// "csr_mutex_"); empty when the expression has no identifier tail.
std::string expr_tail(const std::string& expr) {
  std::string out;
  for (std::size_t i = expr.size(); i-- > 0;) {
    const char c = expr[i];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
        c == '_') {
      out.insert(out.begin(), c);
    } else if (!out.empty()) {
      break;
    }
  }
  return out;
}

struct Program {
  // mutex member name -> set of declaring classes ("" = namespace scope).
  std::map<std::string, std::set<std::string>> mutex_classes;
  std::map<std::string, std::set<std::string>> unordered_classes;
  std::vector<const FunctionModel*> functions;
  // simple name -> function indices; qualified name handled by suffix match.
  std::map<std::string, std::vector<std::size_t>> by_simple;
  std::map<std::string, int> file_rank;  // function index is keyed via functions
};

Program link(const std::vector<TuModel>& tus) {
  Program p;
  for (const auto& tu : tus) {
    for (const auto& m : tu.mutexes) p.mutex_classes[m.name].insert(m.cls);
    for (const auto& u : tu.unordered) p.unordered_classes[u.name].insert(u.cls);
  }
  for (const auto& tu : tus) {
    for (const auto& fn : tu.functions) {
      p.by_simple[fn.simple].push_back(p.functions.size());
      p.functions.push_back(&fn);
    }
  }
  return p;
}

/// Resolves a raw mutex expression in the context of `cls` to a graph node
/// id (`Class::member` or `::global`). nullopt = untracked.
std::optional<std::string> resolve_mutex(const Program& p, const std::string& expr,
                                         const std::string& cls) {
  const std::string name = expr_tail(expr);
  if (name.empty()) return std::nullopt;
  const auto it = p.mutex_classes.find(name);
  if (it == p.mutex_classes.end()) return std::nullopt;
  const auto& classes = it->second;
  if (!cls.empty() && classes.count(cls) > 0) return cls + "::" + name;
  if (classes.size() == 1) {
    const std::string& owner = *classes.begin();
    return owner.empty() ? "::" + name : owner + "::" + name;
  }
  if (classes.count("") > 0) return "::" + name;
  return std::nullopt;
}

constexpr std::size_t kMaxCandidates = 6;

/// Callee candidates for a call site. Qualified names suffix-match against
/// qualified function names; simple names prefer same-class methods. A call
/// shadowed by a caller-local lambda never resolves program-wide.
std::vector<std::size_t> resolve_call(const Program& p, const CallSite& call,
                                      const FunctionModel& caller) {
  const std::string& caller_cls = caller.cls;
  std::vector<std::size_t> out;
  if (caller.local_callables.count(call.name) > 0) return out;
  if (call.name.find("::") != std::string::npos) {
    if (call.name.rfind("std::", 0) == 0) return out;
    const std::string suffix = "::" + call.name;
    for (std::size_t i = 0; i < p.functions.size(); ++i) {
      const std::string& q = p.functions[i]->qualified;
      if (q == call.name ||
          (q.size() > suffix.size() &&
           q.compare(q.size() - suffix.size(), suffix.size(), suffix) == 0)) {
        out.push_back(i);
      }
    }
  } else {
    const auto it = p.by_simple.find(call.name);
    if (it == p.by_simple.end()) return out;
    if (!caller_cls.empty()) {
      for (const std::size_t i : it->second) {
        if (p.functions[i]->cls == caller_cls) out.push_back(i);
      }
    }
    if (out.empty()) out = it->second;
  }
  if (out.size() > kMaxCandidates) out.clear();
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) out += sep;
    out += part;
  }
  return out;
}

// Calls that block (or re-enter the control plane) and must never run under
// a lock. `wait`-family members are tolerated with exactly one lock held —
// that is the condition-variable idiom, which releases its own lock.
bool is_blocking_call(const std::string& simple, std::size_t held_count) {
  static const std::set<std::string> kBlocking = {
      "wait_all", "sleep_for", "sleep_until", "flush",
      "submit",   "route",     "route_graph", "route_linear",
      "provision_chain", "provision_forwarding_graph", "teardown_chain"};
  static const std::set<std::string> kCvWait = {"wait", "wait_for", "wait_until"};
  if (kBlocking.count(simple) > 0) return held_count >= 1;
  if (kCvWait.count(simple) > 0) return held_count >= 2;
  if (simple == "<io-stream>") return held_count >= 1;
  return false;
}

struct EdgeKey {
  std::string from;
  std::string to;
  bool operator<(const EdgeKey& other) const {
    return from != other.from ? from < other.from : to < other.to;
  }
};

/// Iterative Tarjan SCC over the lock-order graph.
std::vector<std::vector<std::string>> strongly_connected(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  std::map<std::string, std::size_t> index_of;
  for (const auto& [node, _] : adj) {
    index_of[node] = nodes.size();
    nodes.push_back(node);
  }
  for (const auto& [_, outs] : adj) {
    for (const auto& to : outs) {
      if (index_of.count(to) == 0) {
        index_of[to] = nodes.size();
        nodes.push_back(to);
      }
    }
  }
  const std::size_t n = nodes.size();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnset);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::string>> sccs;
  std::size_t counter = 0;

  struct Frame {
    std::size_t v;
    std::vector<std::size_t> succs;
    std::size_t next = 0;
  };
  auto successors = [&](std::size_t v) {
    std::vector<std::size_t> out;
    const auto it = adj.find(nodes[v]);
    if (it != adj.end()) {
      for (const auto& to : it->second) out.push_back(index_of.at(to));
    }
    return out;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{root, successors(root)});
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succs.size()) {
        const std::size_t w = f.succs[f.next++];
        if (index[w] == kUnset) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, successors(w)});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(nodes[w]);
            if (w == f.v) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  return sccs;
}

}  // namespace

std::string to_string(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.pass << "] "
      << finding.message;
  return out.str();
}

void Analyzer::add_source(const std::string& path, const std::string& content) {
  tus_.push_back(parse_tu(path, content));
}

Analyzer::Result Analyzer::run() const {
  Result result;
  const Program program = link(tus_);

  result.stats.tus = tus_.size();
  result.stats.functions = program.functions.size();
  for (const auto& tu : tus_) {
    result.stats.lines += tu.lines;
    result.stats.mutexes += tu.mutexes.size();
    for (const auto& fn : tu.functions) {
      result.stats.lock_sites += fn.locks.size();
      result.stats.call_sites += fn.calls.size();
    }
  }

  // allow() lookup: file -> line -> waived passes.
  std::map<std::string, const TuModel*> tu_of;
  for (const auto& tu : tus_) tu_of[tu.path] = &tu;
  auto emit = [&](Finding finding) {
    const auto it = tu_of.find(finding.file);
    if (it != tu_of.end()) {
      const auto at = it->second->allows.find(finding.line);
      if (at != it->second->allows.end() &&
          (at->second.count(finding.pass) > 0 || at->second.count("*") > 0)) {
        result.suppressed.push_back(std::move(finding));
        return;
      }
    }
    result.findings.push_back(std::move(finding));
  };

  // --- transitive lock sets through the call graph -----------------------
  const std::size_t n = program.functions.size();
  std::vector<std::set<std::string>> acquires(n);
  std::vector<std::vector<std::size_t>> callees(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionModel& fn = *program.functions[i];
    for (const auto& lock : fn.locks) {
      for (const auto& expr : lock.exprs) {
        if (const auto id = resolve_mutex(program, expr, fn.cls)) acquires[i].insert(*id);
      }
    }
    for (const auto& call : fn.calls) {
      for (const std::size_t c : resolve_call(program, call, fn)) {
        callees[i].push_back(c);
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::size_t c : callees[i]) {
        for (const auto& id : acquires[c]) {
          if (acquires[i].insert(id).second) changed = true;
        }
      }
    }
  }

  // --- lock-order edges ---------------------------------------------------
  std::map<EdgeKey, LockEdge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const FunctionModel& via, std::size_t line) {
    if (from == to) return;  // same class+member: either atomic multi-lock
                             // (scoped_lock) or a distinct-object handoff
    const EdgeKey key{from, to};
    if (edges.count(key) == 0) {
      edges[key] = LockEdge{from, to, via.file, line, via.qualified};
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionModel& fn = *program.functions[i];
    for (const auto& nested : fn.nested) {
      const auto from = resolve_mutex(program, nested.held_expr, fn.cls);
      const auto to = resolve_mutex(program, nested.acquired_expr, fn.cls);
      if (from && to) add_edge(*from, *to, fn, nested.line);
    }
    for (const auto& call : fn.calls) {
      if (call.held.empty()) continue;
      std::set<std::string> callee_locks;
      for (const std::size_t c : resolve_call(program, call, fn)) {
        callee_locks.insert(acquires[c].begin(), acquires[c].end());
      }
      if (callee_locks.empty()) continue;
      for (const auto& held : call.held) {
        const auto from = resolve_mutex(program, held, fn.cls);
        if (!from) continue;
        for (const auto& to : callee_locks) add_edge(*from, to, fn, call.line);
      }
    }
  }
  for (const auto& [_, edge] : edges) result.edges.push_back(edge);
  result.stats.lock_edges = edges.size();

  // --- pass: lock-cycle ---------------------------------------------------
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, _] : edges) adj[key.from].insert(key.to);
  for (const auto& scc : strongly_connected(adj)) {
    if (scc.size() < 2) continue;
    ++result.stats.cycles;
    const std::set<std::string> members(scc.begin(), scc.end());
    const LockEdge* anchor = nullptr;
    std::vector<std::string> hops;
    for (const auto& [key, edge] : edges) {
      if (members.count(key.from) == 0 || members.count(key.to) == 0) continue;
      if (anchor == nullptr) anchor = &edge;
      if (hops.size() < 4) {
        hops.push_back(edge.from + " -> " + edge.to + " at " + edge.file + ":" +
                       std::to_string(edge.line) + " (in " + edge.via + ")");
      }
    }
    Finding finding;
    finding.file = anchor->file;
    finding.line = anchor->line;
    finding.pass = "lock-cycle";
    finding.message = "lock-order cycle among {" + join(scc, ", ") + "}: " +
                      join(hops, "; ");
    emit(std::move(finding));
  }

  // --- pass: lock-held-blocking ------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionModel& fn = *program.functions[i];
    for (const auto& call : fn.calls) {
      if (call.held.empty()) continue;
      const std::string simple = last_component(call.name);
      if (!is_blocking_call(simple, call.held.size())) continue;
      std::vector<std::string> held_names;
      for (const auto& expr : call.held) {
        const auto id = resolve_mutex(program, expr, fn.cls);
        held_names.push_back(id ? *id : expr);
      }
      Finding finding;
      finding.file = fn.file;
      finding.line = call.line;
      finding.pass = "lock-held-blocking";
      finding.message = "blocking call " +
                        (call.name == "<io-stream>" ? std::string("to stream I/O")
                                                    : "'" + call.name + "'") +
                        " while holding {" + join(held_names, ", ") + "} in " +
                        fn.qualified;
      emit(std::move(finding));
    }
  }

  // --- pass: unordered-escape --------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionModel& fn = *program.functions[i];
    for (const auto& loop : fn.loops) {
      if (!loop.has_sink) continue;
      bool unordered = fn.local_unordered.count(loop.ident) > 0;
      if (!unordered) {
        const auto it = program.unordered_classes.find(loop.ident);
        if (it != program.unordered_classes.end()) {
          unordered = (!fn.cls.empty() && it->second.count(fn.cls) > 0) ||
                      it->second.size() == 1;
        }
      }
      if (!unordered) continue;
      bool sorted_later = false;
      for (const std::size_t sort_line : fn.sort_lines) {
        if (sort_line > loop.line) sorted_later = true;
      }
      if (sorted_later) continue;
      Finding finding;
      finding.file = fn.file;
      finding.line = loop.line;
      finding.pass = "unordered-escape";
      finding.message = "iteration over unordered '" + loop.ident +
                        "' escapes in hash order (sink at line " +
                        std::to_string(loop.sink_line) + ") in " + fn.qualified +
                        "; iterate a sorted snapshot or sort before returning";
      emit(std::move(finding));
    }
  }

  // --- pass: layering-call ------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionModel& fn = *program.functions[i];
    const std::string caller_layer = src_layer(fn.file);
    if (caller_layer.empty()) continue;
    const int caller_rank = layer_ranks().at(caller_layer);
    for (const auto& call : fn.calls) {
      int callee_rank = -1;
      std::string callee_layer;
      if (call.name.find("::") != std::string::npos) {
        // Explicit qualification names the layer directly.
        std::stringstream parts(call.name);
        std::string part;
        while (std::getline(parts, part, ':')) {
          const auto it = layer_ranks().find(part);
          if (it != layer_ranks().end() && it->second > callee_rank) {
            callee_rank = it->second;
            callee_layer = part;
          }
        }
      } else if (!call.member_call) {
        // Unqualified free calls only count with a unique program-wide
        // target. Member calls stay out: without receiver types, `xs.at(i)`
        // would pin to whatever class happens to define a unique at().
        const auto candidates = resolve_call(program, call, fn);
        if (candidates.size() == 1) {
          const std::string layer = src_layer(program.functions[candidates[0]]->file);
          if (!layer.empty()) {
            callee_rank = layer_ranks().at(layer);
            callee_layer = layer;
          }
        }
      }
      if (callee_rank <= caller_rank) continue;
      Finding finding;
      finding.file = fn.file;
      finding.line = call.line;
      finding.pass = "layering-call";
      finding.message = "layer '" + caller_layer + "' calls upwards into '" +
                        callee_layer + "' via '" + call.name + "' in " + fn.qualified;
      emit(std::move(finding));
    }
  }

  auto by_location = [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.pass < b.pass;
  };
  auto same = [](const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.pass == b.pass &&
           a.message == b.message;
  };
  std::sort(result.findings.begin(), result.findings.end(), by_location);
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(), same),
      result.findings.end());
  std::sort(result.suppressed.begin(), result.suppressed.end(), by_location);
  result.suppressed.erase(
      std::unique(result.suppressed.begin(), result.suppressed.end(), same),
      result.suppressed.end());
  result.stats.findings = result.findings.size();
  result.stats.suppressed = result.suppressed.size();
  return result;
}

}  // namespace alvc::analyze
