// alvc_analyze driver: parses every C++ file under the given roots, links
// them into one program model, runs the four passes (see analyze.h), and
// exits non-zero on any unsuppressed, un-baselined finding.
//
// Usage: alvc_analyze [--exclude SUBSTR]... [--baseline FILE]
//                     [--stats-json FILE] <file-or-dir>...
//
// The baseline file has the alvc_lint suppressions format — one
// `path-substring:pass` entry per line (`*` matches every pass), `#`
// comments ignored. The committed tree baseline (tools/alvc_analyze/
// baseline.txt) is empty and the check.sh gate keeps it that way; the flag
// exists so a future true-but-deferred finding can be parked visibly
// instead of silencing the whole gate.
//
// --stats-json writes run statistics (TUs, edges, cycles, wall time) as a
// small JSON artifact so CI can chart analyzer coverage next to BENCH_*.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace {

namespace fs = std::filesystem;

bool analyzable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool excluded(const std::string& path, const std::vector<std::string>& excludes) {
  for (const auto& pattern : excludes) {
    if (path.find(pattern) != std::string::npos) return true;
  }
  return false;
}

struct BaselineEntry {
  std::string path_substring;
  std::string pass;  // "*" matches every pass
};

bool parse_baseline(const std::string& path, std::vector<BaselineEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "alvc_analyze: cannot read baseline file " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string entry = line.substr(start, end - start + 1);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size()) {
      std::cerr << "alvc_analyze: " << path << ":" << line_no
                << ": malformed baseline entry (want path-substring:pass): " << entry
                << "\n";
      return false;
    }
    out.push_back(BaselineEntry{entry.substr(0, colon), entry.substr(colon + 1)});
  }
  return true;
}

bool baselined(const alvc::analyze::Finding& finding,
               const std::vector<BaselineEntry>& entries) {
  for (const auto& e : entries) {
    if (finding.file.find(e.path_substring) == std::string::npos) continue;
    if (e.pass == "*" || e.pass == finding.pass) return true;
  }
  return false;
}

void write_stats_json(const std::string& path, const alvc::analyze::Stats& stats,
                      std::size_t baselined_count, long long wall_ms) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "alvc_analyze: cannot write stats file " << path << "\n";
    return;
  }
  out << "{\n"
      << "  \"schema\": \"alvc-analyze-stats-v1\",\n"
      << "  \"tus\": " << stats.tus << ",\n"
      << "  \"lines\": " << stats.lines << ",\n"
      << "  \"functions\": " << stats.functions << ",\n"
      << "  \"mutexes\": " << stats.mutexes << ",\n"
      << "  \"lock_sites\": " << stats.lock_sites << ",\n"
      << "  \"call_sites\": " << stats.call_sites << ",\n"
      << "  \"lock_edges\": " << stats.lock_edges << ",\n"
      << "  \"lock_cycles\": " << stats.cycles << ",\n"
      << "  \"findings\": " << stats.findings << ",\n"
      << "  \"suppressed\": " << stats.suppressed << ",\n"
      << "  \"baselined\": " << baselined_count << ",\n"
      << "  \"wall_ms\": " << wall_ms << "\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::vector<BaselineEntry> baseline;
  std::string stats_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_analyze: --exclude needs an argument\n";
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_analyze: --baseline needs an argument\n";
        return 2;
      }
      if (!parse_baseline(argv[++i], baseline)) return 2;
    } else if (arg == "--stats-json") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_analyze: --stats-json needs an argument\n";
        return 2;
      }
      stats_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alvc_analyze [--exclude SUBSTR]... [--baseline FILE] "
                   "[--stats-json FILE] <file-or-dir>...\n"
                   "passes: lock-cycle, lock-held-blocking, unordered-escape, "
                   "layering-call\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "alvc_analyze: no inputs (try --help)\n";
    return 2;
  }

  // Wall time is diagnostic output of the tool itself, not simulated time.
  const auto started = std::chrono::steady_clock::now();  // alvc-lint: allow(raw-chrono-clock)

  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && analyzable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "alvc_analyze: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  alvc::analyze::Analyzer analyzer;
  for (const auto& file : files) {
    if (excluded(file, excludes)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "alvc_analyze: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    analyzer.add_source(file, buffer.str());
  }

  const auto result = analyzer.run();
  std::size_t finding_count = 0;
  std::size_t baselined_count = 0;
  for (const auto& finding : result.findings) {
    if (baselined(finding, baseline)) {
      std::cout << alvc::analyze::to_string(finding) << " (baselined)\n";
      ++baselined_count;
      continue;
    }
    std::cout << alvc::analyze::to_string(finding) << "\n";
    ++finding_count;
  }
  for (const auto& finding : result.suppressed) {
    std::cout << alvc::analyze::to_string(finding) << " (suppressed)\n";
  }

  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)  // alvc-lint: allow(raw-chrono-clock)
                           .count();
  if (!stats_path.empty()) {
    write_stats_json(stats_path, result.stats, baselined_count, wall_ms);
  }
  std::cout << "alvc_analyze: " << result.stats.tus << " TUs, "
            << result.stats.functions << " functions, " << result.stats.mutexes
            << " mutexes, " << result.stats.lock_edges << " lock edges, "
            << result.stats.cycles << " cycle" << (result.stats.cycles == 1 ? "" : "s")
            << ", " << finding_count << " finding" << (finding_count == 1 ? "" : "s");
  if (result.stats.suppressed > 0) {
    std::cout << " (" << result.stats.suppressed << " suppressed)";
  }
  if (baselined_count > 0) std::cout << " (" << baselined_count << " baselined)";
  std::cout << " in " << wall_ms << "ms\n";
  return finding_count == 0 ? 0 : 1;
}
