// Heuristic per-TU parser for alvc_analyze. See model.h for scope and
// non-goals. Structure: a character scanner tracks braces and classifies
// each `{` as namespace / class / function / plain block from the pending
// declaration chunk; inside function bodies a line-oriented matcher records
// lock acquisitions, calls (with the held-lock snapshot), range-for loops
// over identifiers, and escape sinks.
#include <cctype>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "model.h"
#include "scan.h"

namespace alvc::analyze {
namespace {

const std::regex& lock_decl_re() {
  // std::lock_guard<std::mutex> lock(mu_);  /  std::scoped_lock lock(a, b);
  static const std::regex re(
      R"(std\s*::\s*(lock_guard|unique_lock|shared_lock|scoped_lock)\s*(?:<[^;{}>]*>)?\s+(\w+)\s*\(([^;{}]*)\))");
  return re;
}

const std::regex& unlock_re() {
  static const std::regex re(R"((\w+)\s*\.\s*unlock\s*\()");
  return re;
}

const std::regex& unordered_local_re() {
  static const std::regex re(
      R"(std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+))");
  return re;
}

const std::regex& sort_re() {
  static const std::regex re(R"((std\s*::\s*(?:stable_)?sort|ranges\s*::\s*sort)\s*\()");
  return re;
}

const std::regex& sink_re() {
  static const std::regex re(R"(\.\s*(push_back|emplace_back|append)\s*\(|<<)");
  return re;
}

const std::regex& io_stream_re() {
  static const std::regex re(
      R"(std\s*::\s*(cout|cerr|clog|ofstream|ifstream|fstream)\b|\bgetline\s*\()");
  return re;
}

const std::regex& call_re() {
  static const std::regex re(
      R"((?:(\.|->)\s*)?([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*\()");
  return re;
}

const std::regex& mutex_decl_re() {
  static const std::regex re(R"(std\s*::\s*(recursive_|shared_|timed_)?mutex\s+(\w+))");
  return re;
}

const std::regex& unordered_member_re() {
  // Matches the declaration; the member name is extracted separately because
  // trailing ALVC_GUARDED_BY(...) annotations follow the declarator.
  static const std::regex re(R"(std\s*::\s*unordered_(map|set|multimap|multiset)\s*<)");
  return re;
}

const std::regex& class_re() {
  static const std::regex re(R"((^|[^\w])(class|struct|union)\s+([A-Za-z_]\w*))");
  return re;
}

const std::regex& namespace_re() {
  static const std::regex re(R"((^|[^\w])namespace(\s+[A-Za-z_][\w:]*)?\s*$)");
  return re;
}

bool is_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",  "switch",        "return",   "catch",
      "sizeof", "alignof",  "throw",  "new",           "delete",   "else",
      "do",     "case",     "goto",   "assert",        "decltype", "noexcept",
      "typeid", "co_await", "co_return", "static_assert"};
  return kKeywords.count(name) > 0;
}

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

/// Last identifier token in an expression ("other.csr_mutex_" -> "csr_mutex_").
std::string last_identifier(const std::string& expr) {
  std::string out;
  for (std::size_t i = expr.size(); i-- > 0;) {
    const char c = expr[i];
    if ((std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_') {
      out.insert(out.begin(), c);
    } else if (!out.empty()) {
      break;
    }
  }
  return out;
}

/// Splits a parenthesized argument list at top-level commas.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

class Parser {
 public:
  explicit Parser(std::string path) { tu_.path = std::move(path); }

  void feed(const std::string& raw) {
    ++line_no_;
    ++tu_.lines;
    record_allows(raw);
    std::string stripped = alvc::lint::strip_noncode(raw, scan_);
    const std::size_t first = stripped.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && stripped[first] == '#';
    if (directive || in_continuation_) {
      in_continuation_ = !stripped.empty() && stripped.back() == '\\';
      return;
    }
    std::size_t pos = 0;
    while (pos < stripped.size()) {
      if (in_function()) {
        pos = feed_body(stripped, pos);
      } else {
        pos = feed_chunk(stripped, pos);
      }
    }
    if (!in_function()) chunk_ += ' ';
  }

  TuModel finish() {
    // Close any function left open by unbalanced input (defensive).
    while (!scopes_.empty()) {
      if (scopes_.back().kind == Scope::kFunction) end_function();
      scopes_.pop_back();
    }
    return std::move(tu_);
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind = kBlock;
    std::string name;
  };

  struct ActiveLock {
    std::vector<std::string> exprs;
    int depth = 0;
    std::string var;  // guard variable, for .unlock() tracking
  };

  struct ActiveLoop {
    std::string ident;
    int close_depth = 0;   // braced: loop ends when fdepth_ returns here
    std::size_t line = 0;
    bool braced = false;
    int lines_left = 0;    // unbraced: this line + the next
    bool has_sink = false;
    std::size_t sink_line = 0;
  };

  bool in_function() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kFunction;
  }

  void record_allows(const std::string& raw) {
    static const std::string kTag = "alvc-analyze: allow(";
    std::size_t at = 0;
    while ((at = raw.find(kTag, at)) != std::string::npos) {
      const std::size_t open = at + kTag.size();
      const std::size_t close = raw.find(')', open);
      if (close == std::string::npos) break;
      tu_.allows[line_no_].insert(raw.substr(open, close - open));
      at = close;
    }
  }

  // --- declaration-chunk mode (outside function bodies) -------------------

  std::size_t feed_chunk(const std::string& text, std::size_t pos) {
    for (std::size_t i = pos; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '{') {
        open_scope();
        if (in_function()) return i + 1;
        continue;
      }
      if (c == '}') {
        if (!scopes_.empty()) scopes_.pop_back();
        chunk_.clear();
        continue;
      }
      if (c == ';') {
        parse_declaration();
        chunk_.clear();
        continue;
      }
      chunk_ += c;
    }
    return text.size();
  }

  void open_scope() {
    const std::string chunk = trim(chunk_);
    chunk_.clear();
    std::smatch m;
    if (chunk.empty()) {
      scopes_.push_back({Scope::kBlock, ""});
      return;
    }
    if (std::regex_search(chunk, m, namespace_re())) {
      scopes_.push_back({Scope::kNamespace, trim(m[2].str())});
      return;
    }
    if (std::regex_search(chunk, std::regex(R"((^|\s)enum(\s|$))"))) {
      scopes_.push_back({Scope::kBlock, ""});
      return;
    }
    const char tail = chunk.back();
    if (tail == '=' || tail == ',' || tail == '(') {
      scopes_.push_back({Scope::kBlock, ""});  // initializer braces
      return;
    }
    const bool has_paren = chunk.find('(') != std::string::npos;
    if (!has_paren && tail == ']') {
      begin_function("<lambda>");  // `auto f = [...]` capture with no params
      return;
    }
    if (!has_paren && std::regex_search(chunk, m, class_re())) {
      // Take the last class-key match: `template <class T> struct Foo`.
      std::string name;
      for (auto it = std::sregex_iterator(chunk.begin(), chunk.end(), class_re());
           it != std::sregex_iterator(); ++it) {
        name = (*it)[3].str();
      }
      scopes_.push_back({Scope::kClass, name});
      return;
    }
    if (has_paren) {
      // Identifier sequence immediately before the first '(' names the
      // function (or, for a ctor, `Class::Class`).
      const std::size_t paren = chunk.find('(');
      std::size_t end = paren;
      while (end > 0 && (std::isspace(static_cast<unsigned char>(chunk[end - 1])) != 0)) --end;
      std::size_t begin = end;
      while (begin > 0) {
        const char p = chunk[begin - 1];
        if ((std::isalnum(static_cast<unsigned char>(p)) != 0) || p == '_' || p == ':' ||
            p == '~') {
          --begin;
        } else {
          break;
        }
      }
      const std::string name = chunk.substr(begin, end - begin);
      if (name.empty() || is_keyword(name)) {
        scopes_.push_back({Scope::kBlock, ""});
      } else if (chunk.find(']') != std::string::npos &&
                 chunk.find('[') != std::string::npos &&
                 chunk.rfind(']') > paren) {
        begin_function("<lambda>");  // `= [cap](args)` style lambda
      } else {
        begin_function(name);
      }
      return;
    }
    scopes_.push_back({Scope::kBlock, ""});
  }

  void begin_function(const std::string& name) {
    FunctionModel fn;
    fn.file = tu_.path;
    fn.line = line_no_;
    std::string prefix;
    std::string innermost_class;
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kNamespace && !s.name.empty()) {
        prefix += s.name + "::";
      } else if (s.kind == Scope::kClass) {
        prefix += s.name + "::";
        innermost_class = s.name;
      }
    }
    fn.qualified = prefix + name;
    const std::size_t last_sep = name.rfind("::");
    if (last_sep != std::string::npos) {
      fn.simple = name.substr(last_sep + 2);
      const std::size_t prev = name.rfind("::", last_sep - 1);
      fn.cls = name.substr(prev == std::string::npos ? 0 : prev + 2,
                           last_sep - (prev == std::string::npos ? 0 : prev + 2));
    } else {
      fn.simple = name;
      fn.cls = innermost_class;
    }
    tu_.functions.push_back(std::move(fn));
    scopes_.push_back({Scope::kFunction, name});
    fdepth_ = 1;
    locks_.clear();
    loops_.clear();
  }

  void end_function() {
    for (const auto& loop : loops_) finish_loop(loop);
    loops_.clear();
    locks_.clear();
  }

  void parse_declaration() {
    const std::string chunk = trim(chunk_);
    if (chunk.empty()) return;
    std::string cls;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) {
        cls = it->name;
        break;
      }
    }
    std::smatch m;
    if (std::regex_search(chunk, m, mutex_decl_re())) {
      MutexDecl decl;
      decl.cls = cls;
      decl.name = m[2].str();
      decl.file = tu_.path;
      decl.line = line_no_;
      decl.shared = m[1].matched && m[1].str() == "shared_";
      tu_.mutexes.push_back(std::move(decl));
      return;
    }
    if (std::regex_search(chunk, m, unordered_member_re()) &&
        chunk.find('(') == std::string::npos) {
      // Member name: last identifier after stripping annotation macros and
      // any default initializer.
      std::string decl = chunk;
      decl = std::regex_replace(decl, std::regex(R"(ALVC_\w+\s*\([^)]*\))"), "");
      const std::size_t eq = decl.find('=');
      if (eq != std::string::npos) decl = decl.substr(0, eq);
      const std::size_t close = decl.rfind('>');
      const std::string name =
          close == std::string::npos ? "" : last_identifier(decl.substr(close + 1));
      if (!name.empty()) tu_.unordered.push_back(UnorderedDecl{cls, name, line_no_});
    }
  }

  // --- function-body mode --------------------------------------------------

  FunctionModel& fn() { return tu_.functions.back(); }

  std::vector<std::string> held_exprs() const {
    std::vector<std::string> out;
    for (const auto& lock : locks_) {
      for (const auto& e : lock.exprs) out.push_back(e);
    }
    return out;
  }

  void pop_to_depth(int depth) {
    while (!locks_.empty() && locks_.back().depth > depth) locks_.pop_back();
    flush_loops(depth);
  }

  void flush_loops(int depth) {
    // A braced loop's body lives at close_depth; once the current depth
    // drops below that, the loop is over.
    for (std::size_t i = loops_.size(); i-- > 0;) {
      if (loops_[i].braced && loops_[i].close_depth > depth) {
        finish_loop(loops_[i]);
        loops_.erase(loops_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  void finish_loop(const ActiveLoop& loop) {
    UnorderedLoop out;
    out.ident = loop.ident;
    out.line = loop.line;
    out.has_sink = loop.has_sink;
    out.sink_line = loop.sink_line;
    fn().loops.push_back(std::move(out));
  }

  void expire_unbraced_loops() {
    for (std::size_t i = loops_.size(); i-- > 0;) {
      if (loops_[i].braced) continue;
      if (--loops_[i].lines_left <= 0) {
        finish_loop(loops_[i]);
        loops_.erase(loops_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  std::size_t feed_body(const std::string& text, std::size_t pos) {
    expire_unbraced_loops();
    // Leading closers first, so same-line regexes see the post-pop held set.
    std::size_t scan = pos;
    while (scan < text.size() &&
           (text[scan] == ' ' || text[scan] == '\t' || text[scan] == '}')) {
      if (text[scan] == '}') {
        --fdepth_;
        pop_to_depth(fdepth_);
        if (fdepth_ == 0) {
          end_function();
          scopes_.pop_back();
          return scan + 1;
        }
      }
      ++scan;
    }
    const std::string body = text.substr(scan);
    match_body(body, scan);
    // Remaining braces decide scope: a mid-line `}` that ends the function
    // hands the rest of the line back to the chunk scanner.
    for (std::size_t i = scan; i < text.size(); ++i) {
      if (text[i] == '{') ++fdepth_;
      if (text[i] == '}') {
        --fdepth_;
        pop_to_depth(fdepth_);
        if (fdepth_ == 0) {
          end_function();
          scopes_.pop_back();
          return i + 1;
        }
      }
    }
    return text.size();
  }

  // Brace delta accumulated before `pos` within this body segment, so a
  // one-line `{ std::lock_guard g(mu_); ... }` records the lock at the
  // depth the trailing `}` actually pops.
  int depth_at(const std::string& body, std::size_t pos) const {
    int delta = 0;
    for (std::size_t i = 0; i < pos && i < body.size(); ++i) {
      if (body[i] == '{') ++delta;
      if (body[i] == '}') --delta;
    }
    return fdepth_ + delta;
  }

  void match_body(const std::string& body, std::size_t /*col*/) {
    std::smatch m;
    // Guard releases before new acquisitions: `lock.unlock(); other.lock()`.
    for (auto it = std::sregex_iterator(body.begin(), body.end(), unlock_re());
         it != std::sregex_iterator(); ++it) {
      const std::string var = (*it)[1].str();
      for (std::size_t i = locks_.size(); i-- > 0;) {
        if (locks_[i].var == var) {
          locks_.erase(locks_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    if (std::regex_search(body, m, lock_decl_re())) {
      std::vector<std::string> exprs;
      bool deferred = false;
      for (const auto& arg : split_args(m[3].str())) {
        if (arg.find("defer_lock") != std::string::npos) deferred = true;
        if (arg.find("std::") != std::string::npos &&
            arg.find("lock") != std::string::npos) {
          continue;  // tag arguments: adopt_lock, try_to_lock, defer_lock
        }
        if (!arg.empty()) exprs.push_back(arg);
      }
      if (!deferred && !exprs.empty()) {
        for (const auto& held : held_exprs()) {
          for (const auto& acquired : exprs) {
            fn().nested.push_back(NestedLock{held, acquired, line_no_});
          }
        }
        fn().locks.push_back(LockAcquisition{exprs, line_no_});
        locks_.push_back(
            ActiveLock{exprs, depth_at(body, static_cast<std::size_t>(m.position(0))),
                       m[2].str()});
      }
    }
    if (std::regex_search(body, m, unordered_local_re())) {
      fn().local_unordered.insert(m[1].str());
    }
    static const std::regex lambda_local_re(R"(auto[&\s]+(\w+)\s*=\s*\[)");
    if (std::regex_search(body, m, lambda_local_re)) {
      fn().local_callables.insert(m[1].str());
    }
    if (std::regex_search(body, sort_re())) fn().sort_lines.push_back(line_no_);
    match_range_for(body);
    if (!loops_.empty() && std::regex_search(body, sink_re())) {
      for (auto& loop : loops_) {
        if (!loop.has_sink) {
          loop.has_sink = true;
          loop.sink_line = line_no_;
        }
      }
    }
    match_calls(body);
  }

  void match_range_for(const std::string& body) {
    static const std::regex for_re(R"((^|[^\w])for\s*\()");
    std::smatch m;
    if (!std::regex_search(body, m, for_re)) return;
    const std::size_t open =
        static_cast<std::size_t>(m.position(0) + m.length(0)) - 1;
    int depth = 0;
    std::size_t close = std::string::npos;
    std::size_t colon = std::string::npos;
    bool classic = false;
    for (std::size_t i = open; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (depth == 1 && c == ';') classic = true;
      if (depth == 1 && c == ':' && colon == std::string::npos) {
        const bool scope_colon = (i + 1 < body.size() && body[i + 1] == ':') ||
                                 (i > 0 && body[i - 1] == ':');
        if (!scope_colon) colon = i;
      }
    }
    if (classic || colon == std::string::npos || close == std::string::npos) return;
    const std::string range = trim(body.substr(colon + 1, close - colon - 1));
    if (range.empty() || range.back() == ')') return;  // call result, not a member
    const std::string ident = last_identifier(range);
    if (ident.empty()) return;
    ActiveLoop loop;
    loop.ident = ident;
    loop.line = line_no_;
    const std::string tail = body.substr(close + 1);
    if (tail.find('{') != std::string::npos) {
      loop.braced = true;
      loop.close_depth = depth_at(body, close) + 1;  // the `{` after the header
    } else {
      loop.braced = false;
      loop.lines_left = 2;  // header line + one statement line
    }
    loops_.push_back(std::move(loop));
  }

  void match_calls(const std::string& body) {
    const auto held = held_exprs();
    for (auto it = std::sregex_iterator(body.begin(), body.end(), call_re());
         it != std::sregex_iterator(); ++it) {
      std::string name = (*it)[2].str();
      name = std::regex_replace(name, std::regex(R"(\s+)"), "");
      if (is_keyword(name) || name.rfind("ALVC_", 0) == 0) continue;
      CallSite call;
      call.name = std::move(name);
      call.member_call = (*it)[1].matched;
      call.line = line_no_;
      call.held = held;
      fn().calls.push_back(std::move(call));
    }
    if (!held.empty() && std::regex_search(body, io_stream_re())) {
      CallSite call;
      call.name = "<io-stream>";
      call.line = line_no_;
      call.held = held;
      fn().calls.push_back(std::move(call));
    }
  }

  TuModel tu_;
  alvc::lint::ScanState scan_;
  std::size_t line_no_ = 0;
  bool in_continuation_ = false;
  std::vector<Scope> scopes_;
  std::string chunk_;
  int fdepth_ = 0;
  std::vector<ActiveLock> locks_;
  std::vector<ActiveLoop> loops_;
};

}  // namespace

TuModel parse_tu(const std::string& path, const std::string& content) {
  Parser parser(path);
  std::istringstream stream{content};
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    parser.feed(line);
  }
  return parser.finish();
}

}  // namespace alvc::analyze
