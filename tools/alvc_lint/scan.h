// Shared source scanner for the static-analysis tools (alvc_lint,
// alvc_analyze): strips comments and string/char literal bodies so rule
// patterns and the analyzer's parser only ever match code.
//
// The stripper is line-oriented and keeps column positions stable (every
// stripped character becomes a space), so findings can point at the raw
// line. Block-comment state survives line breaks via ScanState; strings
// and char literals cannot span lines in this codebase.
#pragma once

#include <cctype>
#include <string>

namespace alvc::lint {

/// Lexer state that survives line breaks (block comments only).
struct ScanState {
  bool in_block_comment = false;
};

/// Replaces comments and string/char literal bodies with spaces so rule
/// patterns only ever match code. Keeps column positions stable.
/// Preprocessor directives keep their string bodies: an #include's quoted
/// path is exactly what the layering rule needs to see.
inline std::string strip_noncode(const std::string& line, ScanState& state) {
  std::string out(line.size(), ' ');
  bool in_string = false;
  bool in_char = false;
  const std::size_t first = line.find_first_not_of(" \t");
  const bool keep_strings = first != std::string::npos && line[first] == '#';
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (state.in_block_comment) {
      if (c == '*' && next == '/') {
        state.in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (keep_strings) out[i] = c;
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') break;  // rest of the line is a comment
    if (c == '/' && next == '*') {
      state.in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      if (keep_strings) out[i] = c;
      in_string = true;
      continue;
    }
    // A ' between identifier chars is C++14 digit separator (1'000), not a
    // char literal open.
    if (c == '\'') {
      const bool digit_sep = i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) != 0) &&
                             (std::isalnum(static_cast<unsigned char>(next)) != 0);
      if (!digit_sep) {
        in_char = true;
        continue;
      }
    }
    out[i] = c;
  }
  // Unterminated string at end of line: treat as closed (defensive).
  return out;
}

}  // namespace alvc::lint
