// alvc_lint: project-specific source rules clang-tidy cannot know.
//
// Eight rules, each encoding a contract earlier PRs established:
//
//   nondeterministic-rng  no rand()/srand()/std::random_device/wall-clock
//                         seeds in src/ or tests/ — every stochastic path
//                         (schedules, workloads, differential suites) must
//                         be a pure function of an explicit seed, or the
//                         20-seed soaks and ALVC_TRACE_SEED replays lie.
//   index-arithmetic      no arithmetic on TaggedId::index() outside
//                         topology/ and graph/ — vertex layout (ToRs first,
//                         then OPSs) is those layers' private contract;
//                         everyone else asks for a helper.
//   naked-void            no bare (void)/static_cast<void> discards — a
//                         dropped Status is a swallowed failure; use
//                         ALVC_IGNORE_STATUS(expr, "reason") instead. Lines
//                         inside EXPECT_THROW/ASSERT_THROW are exempt: the
//                         macro needs the cast, and the value never exists
//                         because the expression is required to throw.
//   layering-include      layers below the orchestrator (util, telemetry,
//                         graph, topology, cluster, nfv, sdn) must not
//                         include orchestrator/ headers.
//   elastic-include       no src/ layer other than elastic/ itself includes
//                         elastic/ headers — the elastic control loop sits
//                         at the very top of the stack and is composed from
//                         outside (tests, benches, the ChaosParams tick
//                         hook), never depended on from below.
//   raw-chrono-clock      no raw std::chrono::steady_clock reads outside
//                         src/telemetry/ and core/experiment.h — timing goes
//                         through telemetry::Tracer (whose logical mode keeps
//                         seeded sims bit-reproducible) or core::Experiment.
//   map-adjacency         no node-based std::map/std::unordered_map on
//                         graph/ or topology/ hot paths — adjacency and
//                         per-vertex state live in CSR arrays or stamped
//                         scratch (graph/scratch.h).
//   raw-lock              no std::recursive_mutex and no naked
//                         `.lock()`/`->lock()` calls in src/ — every
//                         acquisition goes through an RAII guard so the
//                         alvc_analyze lock-order model and the runtime
//                         util::LockRank scopes see it.
//
// A line suppresses a rule with `alvc-lint: allow(<rule>)` in a comment.
// The scanner strips comments and string/char literals before matching, so
// prose mentioning rand() does not trip the gate. Preprocessor lines keep
// their string bodies — an #include's quoted path is what the layering rule
// inspects.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace alvc::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Lints one translation unit. `path` decides the path-scoped rules
/// (layering, index arithmetic); `content` is the raw file text.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view content);

/// Formats a finding as "path:line: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace alvc::lint
