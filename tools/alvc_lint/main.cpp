// alvc_lint driver: lints files and directory trees, exits non-zero on any
// unsuppressed finding. See lint.h for the rules.
//
// Usage: alvc_lint [--exclude SUBSTR]... [--suppressions FILE] <file-or-dir>...
//
// The suppressions file waives known findings without touching the source:
// one `path-substring:rule` entry per line (rule `*` matches every rule),
// `#` comments and blank lines ignored. Waived findings are still printed,
// tagged `(suppressed)`, so drift stays visible in the log.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool excluded(const std::string& path, const std::vector<std::string>& excludes) {
  for (const auto& pattern : excludes) {
    if (path.find(pattern) != std::string::npos) return true;
  }
  return false;
}

struct Suppression {
  std::string path_substring;
  std::string rule;  // "*" matches every rule
};

/// Parses a suppressions file (`path-substring:rule` per line, `#` comments).
/// Returns false (with a message on stderr) on an unreadable file or a
/// malformed line — a silently ignored suppression would un-gate the tree.
bool parse_suppressions(const std::string& path, std::vector<Suppression>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "alvc_lint: cannot read suppressions file " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string entry = line.substr(start, end - start + 1);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size()) {
      std::cerr << "alvc_lint: " << path << ":" << line_no
                << ": malformed suppression (want path-substring:rule): " << entry << "\n";
      return false;
    }
    out.push_back(Suppression{entry.substr(0, colon), entry.substr(colon + 1)});
  }
  return true;
}

bool suppressed(const alvc::lint::Finding& finding, const std::vector<Suppression>& entries) {
  for (const auto& s : entries) {
    if (finding.file.find(s.path_substring) == std::string::npos) continue;
    if (s.rule == "*" || s.rule == finding.rule) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::vector<Suppression> suppressions;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_lint: --exclude needs an argument\n";
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (arg == "--suppressions") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_lint: --suppressions needs an argument\n";
        return 2;
      }
      if (!parse_suppressions(argv[++i], suppressions)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alvc_lint [--exclude SUBSTR]... [--suppressions FILE] "
                   "<file-or-dir>...\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "alvc_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "alvc_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t linted = 0;
  std::size_t finding_count = 0;
  std::size_t suppressed_count = 0;
  for (const auto& file : files) {
    if (excluded(file, excludes)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "alvc_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++linted;
    for (const auto& finding : alvc::lint::lint_source(file, buffer.str())) {
      if (suppressed(finding, suppressions)) {
        std::cout << alvc::lint::to_string(finding) << " (suppressed)\n";
        ++suppressed_count;
        continue;
      }
      std::cout << alvc::lint::to_string(finding) << "\n";
      ++finding_count;
    }
  }
  std::cout << "alvc_lint: " << linted << " files, " << finding_count << " finding"
            << (finding_count == 1 ? "" : "s");
  if (suppressed_count > 0) std::cout << " (" << suppressed_count << " suppressed)";
  std::cout << "\n";
  return finding_count == 0 ? 0 : 1;
}
