// alvc_lint driver: lints files and directory trees, exits non-zero on any
// finding. See lint.h for the rules.
//
// Usage: alvc_lint [--exclude SUBSTR]... <file-or-dir>...
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool excluded(const std::string& path, const std::vector<std::string>& excludes) {
  for (const auto& pattern : excludes) {
    if (path.find(pattern) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "alvc_lint: --exclude needs an argument\n";
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alvc_lint [--exclude SUBSTR]... <file-or-dir>...\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "alvc_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "alvc_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t linted = 0;
  std::size_t finding_count = 0;
  for (const auto& file : files) {
    if (excluded(file, excludes)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "alvc_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++linted;
    for (const auto& finding : alvc::lint::lint_source(file, buffer.str())) {
      std::cout << alvc::lint::to_string(finding) << "\n";
      ++finding_count;
    }
  }
  std::cout << "alvc_lint: " << linted << " files, " << finding_count << " finding"
            << (finding_count == 1 ? "" : "s") << "\n";
  return finding_count == 0 ? 0 : 1;
}
