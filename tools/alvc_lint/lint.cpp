#include "lint.h"

#include <algorithm>
#include <regex>

#include "scan.h"

namespace alvc::lint {

namespace {

/// The layer a source path belongs to: the directory segment right after
/// "src/", or empty when the file is not under src/.
std::string_view src_layer(std::string_view path) {
  std::size_t pos = path.rfind("src/");
  // Accept both "src/util/x.h" and "/abs/repo/src/util/x.h", but not
  // "tests/util/x.h" (no preceding separator requirement beyond start).
  if (pos == std::string_view::npos) return {};
  if (pos != 0 && path[pos - 1] != '/') return {};
  const std::size_t start = pos + 4;
  const std::size_t end = path.find('/', start);
  if (end == std::string_view::npos) return {};
  return path.substr(start, end - start);
}

bool path_in_layer(std::string_view path, std::string_view layer) {
  return src_layer(path) == layer;
}

struct Rule {
  const char* name;
  const char* message;
  std::regex pattern;
  /// Null = the rule applies everywhere.
  bool (*applies)(std::string_view path);
  /// A line containing any of these substrings (in code, after stripping) is
  /// exempt. Used for idioms that force a match, e.g. EXPECT_THROW((void)f()).
  std::vector<std::string> exempt_markers;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    const auto flags = std::regex::ECMAScript | std::regex::optimize;
    r.push_back(Rule{
        "nondeterministic-rng",
        "nondeterministic source (unseeded RNG or wall clock); every stochastic path "
        "must derive from an explicit seed (use util::Rng)",
        // `.rand(`/`->rand(` (a member named rand) stay legal; `::rand(`
        // and a bare `rand(` do not. Same shape for time().
        std::regex(R"((^|[^\w.>])rand\s*\(|(^|[^\w.>])srand\s*\(|random_device|)"
                   R"(system_clock\s*::\s*now|high_resolution_clock\s*::\s*now|)"
                   R"((^|[^\w.>])time\s*\(\s*(NULL|nullptr|0)?\s*\))",
                   flags),
        nullptr});
    r.push_back(Rule{
        "index-arithmetic",
        "arithmetic on TaggedId::index() outside topology/ and graph/; the vertex "
        "layout is their private contract — add or use a helper instead",
        std::regex(R"(\.index\s*\(\s*\)\s*[+\-*/%]|[+\-*/%]\s*[\w.]*(\.|->)index\s*\(\s*\))",
                   flags),
        [](std::string_view path) {
          return !path_in_layer(path, "topology") && !path_in_layer(path, "graph");
        }});
    r.push_back(Rule{
        "naked-void",
        "bare discard of a result; use ALVC_IGNORE_STATUS(expr, \"reason\") so the "
        "judgement call is named and reviewable",
        std::regex(R"(\(\s*void\s*\)\s*[\w(:!*&~]|static_cast\s*<\s*void\s*>)", flags),
        nullptr,
        // Throw-assertions need a (void) to satisfy [[nodiscard]], yet the
        // value never materializes — the expression is required to throw.
        {"EXPECT_THROW", "ASSERT_THROW", "EXPECT_ANY_THROW", "ASSERT_ANY_THROW"}});
    r.push_back(Rule{
        "layering-include",
        "layer below the orchestrator includes an orchestrator/ header; dependencies "
        "flow util -> telemetry -> graph -> topology -> cluster -> nfv -> sdn -> orchestrator",
        std::regex(R"(#\s*include\s*"orchestrator/)", flags),
        [](std::string_view path) {
          const std::string_view layer = src_layer(path);
          return layer == "util" || layer == "telemetry" || layer == "graph" ||
                 layer == "topology" || layer == "cluster" || layer == "nfv" || layer == "sdn";
        }});
    r.push_back(Rule{
        "elastic-include",
        "src/ layer includes an elastic/ header; the elastic control loop is the top "
        "of the stack — it drives the orchestrator and is wired in from outside "
        "(tests, benches, the faults tick hook), never included from below",
        std::regex(R"(#\s*include\s*"elastic/)", flags),
        [](std::string_view path) {
          const std::string_view layer = src_layer(path);
          return !layer.empty() && layer != "elastic";
        }});
    r.push_back(Rule{
        "raw-chrono-clock",
        "raw std::chrono clock read outside the telemetry layer; route timing through "
        "telemetry::Tracer (logical or steady mode) or core::Experiment so seeded runs "
        "stay bit-reproducible",
        // steady_clock is the one clock the rng rule leaves legal — it is
        // monotonic, but a raw read still smuggles wall time into results.
        std::regex(R"(steady_clock\s*::\s*now|std\s*::\s*chrono\s*::\s*steady_clock)", flags),
        [](std::string_view path) {
          return !path_in_layer(path, "telemetry") &&
                 path.find("core/experiment.h") == std::string_view::npos;
        }});
    r.push_back(Rule{
        "map-adjacency",
        "node-based map (std::map/std::unordered_map) on a graph/topology hot path; "
        "adjacency and per-vertex state belong in CSR arrays or stamped scratch "
        "(graph/scratch.h) — a hash probe per neighbor visit is what the CSR "
        "refactor removed",
        std::regex(R"(std\s*::\s*unordered_map\s*<|std\s*::\s*map\s*<)", flags),
        [](std::string_view path) {
          return path_in_layer(path, "graph") || path_in_layer(path, "topology");
        }});
    r.push_back(Rule{
        "raw-lock",
        "recursive mutex or naked lock() call outside an RAII guard; hold every "
        "mutex through lock_guard/unique_lock/scoped_lock so alvc_analyze and the "
        "LockRank runtime can see the acquisition (recursive locking hides "
        "re-entrancy the lock-order model cannot rank)",
        // `.lock()` / `->lock()` with an empty argument list is a manual
        // acquisition; `try_lock`/`unlock` and RAII declarations that merely
        // NAME a guard `lock` do not match (the guard name is followed by
        // `(mu_)`, never by an empty call).
        std::regex(R"(std\s*::\s*recursive_mutex|(\.|->)\s*lock\s*\(\s*\))", flags),
        [](std::string_view path) { return !src_layer(path).empty(); }});
    return r;
  }();
  return kRules;
}

bool line_allows(const std::string& raw_line, std::string_view rule) {
  const std::string needle = "alvc-lint: allow(" + std::string(rule) + ")";
  return raw_line.find(needle) != std::string::npos;
}

}  // namespace

std::vector<Finding> lint_source(std::string_view path, std::string_view content) {
  std::vector<Finding> findings;
  ScanState state;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string raw(content.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                                            : eol - pos));
    ++line_no;
    const std::string code = strip_noncode(raw, state);
    for (const Rule& rule : rules()) {
      if (rule.applies != nullptr && !rule.applies(path)) continue;
      if (!std::regex_search(code, rule.pattern)) continue;
      if (line_allows(raw, rule.name)) continue;
      const bool exempt =
          std::any_of(rule.exempt_markers.begin(), rule.exempt_markers.end(),
                      [&](const std::string& m) { return code.find(m) != std::string::npos; });
      if (exempt) continue;
      findings.push_back(Finding{std::string(path), line_no, rule.name, rule.message});
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" + finding.rule + "] " +
         finding.message;
}

}  // namespace alvc::lint
