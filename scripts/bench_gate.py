#!/usr/bin/env python3
"""Bench regression gate over alvc-bench-trajectory-v1 files.

usage: bench_gate.py <fresh.json> [<baseline.json>]

Compares the fresh run's after_cpu_time_us per (bench, name) row against
the baseline's. Without an explicit baseline the newest committed
BENCH_PR*.json in the current directory (the repo root in CI) is used;
with no committed trajectory at all the gate passes vacuously so the
first PR that introduces benchmarks can land.

A row is a regression when fresh > baseline * (1 + tolerance). The
tolerance defaults to 0.25 and can be widened for a noisy host via
ALVC_BENCH_TOLERANCE (a fraction, e.g. ALVC_BENCH_TOLERANCE=0.60).
Rows present on only one side are reported but never fatal: new
benchmarks must not need a baseline edit to land, and retired ones must
not wedge the gate.

Exit codes: 0 clean, 1 regression, 2 usage or malformed input.
"""

import glob
import json
import os
import sys


def fail_usage(message):
    print(f"bench_gate: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        fail_usage(f"cannot read {path}: {err.strerror}")
    except json.JSONDecodeError as err:
        fail_usage(f"{path} is not valid JSON: {err}")
    if data.get("schema") != "alvc-bench-trajectory-v1":
        fail_usage(f"{path}: expected schema alvc-bench-trajectory-v1, "
                   f"got {data.get('schema')!r}")
    return {(row["bench"], row["name"]): row["after_cpu_time_us"]
            for row in data.get("benchmarks", [])
            if row.get("after_cpu_time_us") is not None}


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        fail_usage("usage: bench_gate.py <fresh.json> [<baseline.json>]")
    fresh_path = argv[1]
    if len(argv) == 3:
        baseline_path = argv[2]
    else:
        committed = sorted(glob.glob("BENCH_PR*.json"), reverse=True)
        if not committed:
            print("bench_gate: no committed BENCH_PR*.json baseline; "
                  "gate passes vacuously")
            return 0
        baseline_path = committed[0]

    try:
        tolerance = float(os.environ.get("ALVC_BENCH_TOLERANCE", "0.25"))
    except ValueError:
        fail_usage("ALVC_BENCH_TOLERANCE must be a number (a fraction, e.g. 0.25)")
    if tolerance < 0:
        fail_usage("ALVC_BENCH_TOLERANCE must be >= 0")

    fresh = load(fresh_path)
    baseline = load(baseline_path)
    print(f"bench_gate: {fresh_path} vs {baseline_path} "
          f"(tolerance {tolerance:.0%})")

    regressions = []
    for key in sorted(baseline):
        bench, name = key
        if key not in fresh:
            print(f"  [gone] {bench}/{name}: not in the fresh run")
            continue
        before, after = baseline[key], fresh[key]
        if before <= 0:
            print(f"  [skip] {bench}/{name}: non-positive baseline {before}")
            continue
        ratio = after / before
        verdict = "ok" if ratio <= 1 + tolerance else "REGRESSED"
        print(f"  [{verdict}] {bench}/{name}: "
              f"{before:.1f}us -> {after:.1f}us ({ratio:.2f}x)")
        if verdict == "REGRESSED":
            regressions.append((bench, name, ratio))
    for bench, name in sorted(set(fresh) - set(baseline)):
        print(f"  [new] {bench}/{name}: {fresh[(bench, name)]:.1f}us, no baseline")

    if regressions:
        print(f"bench_gate: {len(regressions)} benchmark(s) regressed beyond "
              f"{tolerance:.0%}; widen with ALVC_BENCH_TOLERANCE if the host "
              f"is noisy", file=sys.stderr)
        return 1
    print("bench_gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
