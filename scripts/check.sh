#!/usr/bin/env bash
# One-command gate: static analysis first, then configure + build + ctest,
# then the thread-safety suites again under ThreadSanitizer, the
# failure/recovery suites under AddressSanitizer, the telemetry subsystem
# with hooks compiled OFF (plus an ON-vs-OFF bit-identical seeded sim diff
# and a bench smoke), the full suite under UndefinedBehaviorSanitizer, and
# a benchmark smoke that writes machine-readable JSON.
#
# The same legs back the CI pipeline (.github/workflows/ci.yml): each CI
# job runs `scripts/check.sh --ci <leg>`, so the workflow and the local
# gate cannot drift apart.
#
# The static stage runs BEFORE any test and has four parts:
#   1. alvc_lint        — project rules (determinism, id arithmetic, naked
#                         discards, layering); always runs, failure is fatal.
#   2. alvc_analyze     — whole-program passes (lock-order cycles, blocking
#                         calls under locks, unordered-container iteration
#                         escaping in hash order, call-level layering);
#                         always runs against tools/alvc_analyze/baseline.txt
#                         and writes a run-stats JSON next to the bench
#                         artifacts. Failure is fatal.
#   3. -Wthread-safety  — clang thread-safety analysis of the ALVC_GUARDED_BY
#                         annotations, built with -DALVC_STATIC_ANALYSIS=ON.
#                         clang++ is REQUIRED: a silent skip here once meant
#                         the annotations went unchecked until CI. On a
#                         clang-less host, opt out explicitly with
#                         ALVC_SKIP_CLANG_STATIC=1 (the annotations still
#                         compile away under the host compiler).
#   4. clang-tidy       — .clang-tidy checks over src/; best-effort, runs
#                         when a clang-tidy binary is on PATH, never fatal
#                         on absence.
#
# The TSan and ASan legs additionally build with -DALVC_LOCK_ORDER_CHECK=ON,
# so every mutex acquisition in those soaks asserts the static lock-order
# ranks (src/util/lock_rank.h) at runtime.
#
# Usage:
#   scripts/check.sh                    # static gate + full ctest + sanitizer legs
#   scripts/check.sh --static-only      # static gate only (fast pre-commit loop)
#   scripts/check.sh --ci <leg>         # exactly one CI leg: static, analyze,
#                                       #   tier1, tsan, asan, ubsan,
#                                       #   telemetry, overload-soak,
#                                       #   elastic-soak, bench-smoke,
#                                       #   scale-soak
#   scripts/check.sh --bench-json <out> # run the tracked benchmarks
#                                       #   (bench_route_cache,
#                                       #   bench_fig4_al_construction,
#                                       #   bench_sharded_control_plane) and
#                                       #   write alvc-bench-trajectory-v1
#                                       #   JSON; see emit_bench_json for
#                                       #   baseline resolution
#                                       #   (ALVC_BENCH_SCALE=full adds the
#                                       #   million-VM rows, Release build)
#   ALVC_SKIP_CLANG_STATIC=1 scripts/check.sh  # clang-less host: skip TSA build
#   ALVC_SKIP_TSAN=1 scripts/check.sh   # skip the TSan pass (e.g. unsupported host)
#   ALVC_SKIP_ASAN=1 scripts/check.sh   # skip the ASan pass
#   ALVC_SKIP_UBSAN=1 scripts/check.sh  # skip the UBSan pass
#   ALVC_SKIP_TELEMETRY=1 scripts/check.sh  # skip the telemetry ON/OFF leg
#   ALVC_JOBS=8 scripts/check.sh        # override parallelism
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${ALVC_JOBS:-$(nproc 2>/dev/null || echo 2)}"

leg_lint() {
  echo "== static: alvc_lint =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target alvc_lint
  ./build/tools/alvc_lint --exclude tests/tools/fixtures src tests tools
}

leg_analyze() {
  echo "== static: alvc_analyze (whole-program lock order & determinism) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target alvc_analyze
  mkdir -p build/analyze
  ./build/tools/alvc_analyze \
    --exclude tests/tools/fixtures --exclude tests/tools/analyze_fixtures \
    --baseline tools/alvc_analyze/baseline.txt \
    --stats-json build/analyze/alvc-analyze-stats.json \
    src tests tools
}

leg_clang_static() {
  if ! command -v clang++ >/dev/null 2>&1; then
    if [[ "${ALVC_SKIP_CLANG_STATIC:-0}" == "1" ]]; then
      echo "== static: clang++ not found; thread-safety analysis SKIPPED (ALVC_SKIP_CLANG_STATIC=1) =="
      echo "   (annotations still compile away cleanly under the host compiler)"
      return 0
    fi
    echo "error: clang++ not found, but the -Wthread-safety static gate requires it." >&2
    echo "       Install clang, or run with ALVC_SKIP_CLANG_STATIC=1 to skip this" >&2
    echo "       leg explicitly (CI still enforces it)." >&2
    exit 1
  fi
  echo "== static: clang -Wthread-safety (-DALVC_STATIC_ANALYSIS=ON) =="
  cmake -B build-static -S . -DALVC_STATIC_ANALYSIS=ON \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-static -j "$jobs"
}

leg_clang_tidy() {
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== static: clang-tidy (best effort) =="
    # compile_commands.json is exported by the plain configure above.
    mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${tidy_sources[@]}"
  else
    echo "== static: clang-tidy not found; tidy stage skipped (non-fatal) =="
  fi
}

leg_tier1() {
  echo "== configure + build (plain) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"

  echo "== ctest (full suite) =="
  ctest --test-dir build --output-on-failure -j "$jobs"
}

leg_tsan() {
  echo "== configure + build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DALVC_SANITIZE=thread -DALVC_LOCK_ORDER_CHECK=ON >/dev/null
  cmake --build build-tsan -j "$jobs" --target \
    util_executor_test cluster_parallel_build_differential_test \
    cluster_degraded_cluster_test telemetry_metric_registry_test

  echo "== ctest -L sanitize (under TSan) =="
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L sanitize
}

leg_asan() {
  echo "== configure + build (AddressSanitizer) =="
  cmake -B build-asan -S . -DALVC_SANITIZE=address -DALVC_LOCK_ORDER_CHECK=ON >/dev/null
  cmake --build build-asan -j "$jobs" --target \
    topology_failure_api_test cluster_failure_test cluster_degraded_cluster_test \
    orchestrator_failure_test faults_fault_injector_test faults_state_auditor_test \
    faults_chaos_soak_test orchestrator_route_cache_test \
    orchestrator_route_cache_differential_test orchestrator_csr_chaos_differential_test \
    faults_overload_soak_test orchestrator_strict_ladder_differential_test \
    elastic_scaling_test elastic_migration_test elastic_elastic_soak_test

  echo "== ctest -L failures (under ASan) =="
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L failures
}

leg_telemetry() {
  echo "== configure + build (-DALVC_TELEMETRY=OFF) =="
  # elastic_scaling_test rides along so the elastic control loop's gauge and
  # counter hooks are proven to compile away with telemetry off.
  cmake -B build-notelemetry -S . -DALVC_TELEMETRY=OFF >/dev/null
  cmake --build build-notelemetry -j "$jobs" --target \
    datacenter_sim telemetry_determinism_test bench_telemetry_overhead elastic_scaling_test

  echo "== telemetry: hooks compile to no-ops and determinism holds when OFF =="
  ctest --test-dir build-notelemetry --output-on-failure -j "$jobs" \
    -R 'Telemetry(Determinism|Export)Test|ScalingFixture'

  echo "== telemetry: seeded sim output is bit-identical ON vs OFF =="
  # datacenter_sim is fully seeded; instrumentation must never perturb the
  # simulation itself, so the two builds' stdout must match byte-for-byte.
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target datacenter_sim bench_telemetry_overhead
  ./build/examples/datacenter_sim > build/telemetry-on.out
  ./build-notelemetry/examples/datacenter_sim > build-notelemetry/telemetry-off.out
  diff build/telemetry-on.out build-notelemetry/telemetry-off.out
  ./build/examples/datacenter_sim > build/telemetry-on2.out
  diff build/telemetry-on.out build/telemetry-on2.out

  echo "== telemetry: overhead bench smoke (ON and OFF builds) =="
  ./build/bench/bench_telemetry_overhead \
    --benchmark_min_time=0.01 --benchmark_filter='BM_(CounterAdd|HookMacro)' >/dev/null
  ./build-notelemetry/bench/bench_telemetry_overhead \
    --benchmark_min_time=0.01 --benchmark_filter='BM_(CounterAdd|HookMacro)' >/dev/null
}

leg_ubsan() {
  echo "== configure + build (UndefinedBehaviorSanitizer) =="
  cmake -B build-ubsan -S . -DALVC_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$jobs"

  echo "== ctest (full suite, under UBSan) =="
  ctest --test-dir build-ubsan --output-on-failure -j "$jobs"
}

leg_overload_soak() {
  echo "== overload soak: QoS allocator under flash crowds, churn, and faults =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target \
    orchestrator_bandwidth_allocator_test orchestrator_strict_ladder_differential_test \
    faults_overload_soak_test bench_overload_downgrade

  echo "== ctest: water-filling properties, strict-ladder differential, 20-seed soak =="
  ctest --test-dir build --output-on-failure -j "$jobs" \
    -R '(WaterFill|Ladder|AllocationPlan|StrictLadderDifferential|OverloadSoak|QosRetryBackoff)'

  echo "== overload downgrade bench smoke (experiment table asserts audits clean) =="
  ./build/bench/bench_overload_downgrade \
    --benchmark_min_time=0.01 --benchmark_filter='BM_(WaterFillPlan|RebalancePass)' >/dev/null
}

leg_elastic_soak() {
  echo "== elastic soak: demand-driven scaling + live migration under faults =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target \
    nfv_lifecycle_scale_test elastic_demand_model_test elastic_scaling_test \
    elastic_migration_test elastic_elastic_soak_test bench_elastic_scaling

  echo "== ctest: demand model, scaling/migration branches, 20-seed elastic soak =="
  ctest --test-dir build --output-on-failure -j "$jobs" \
    -R '(DemandModel|SharedWaveform|ScalingFixture|ScalingQos|MigrationFixture|ElasticSoak|LifecycleScale|CloudScale)'

  echo "== elastic bench smoke (experiment table asserts the 3x AL-update ratio) =="
  ./build/bench/bench_elastic_scaling \
    --benchmark_min_time=0.01 --benchmark_filter='BM_ElasticTick' >/dev/null
}

leg_bench_smoke() {
  echo "== bench smoke: route cache + parallel AL build + elastic + sharded (tiny sizes, JSON out) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target \
    bench_route_cache bench_parallel_al_build bench_elastic_scaling \
    bench_sharded_control_plane
  mkdir -p build/bench-smoke
  ./build/bench/bench_route_cache \
    --benchmark_min_time=0.01 \
    --benchmark_out=build/bench-smoke/route_cache.json \
    --benchmark_out_format=json
  ./build/bench/bench_parallel_al_build \
    --benchmark_min_time=0.01 \
    --benchmark_out=build/bench-smoke/parallel_al_build.json \
    --benchmark_out_format=json
  ./build/bench/bench_elastic_scaling \
    --benchmark_min_time=0.01 \
    --benchmark_out=build/bench-smoke/elastic_scaling.json \
    --benchmark_out_format=json
  ./build/bench/bench_sharded_control_plane \
    --benchmark_min_time=0.01 \
    --benchmark_out=build/bench-smoke/sharded_control_plane.json \
    --benchmark_out_format=json
  emit_bench_json build/bench-smoke/BENCH_PR10.json
  echo "== bench regression gate: fresh trajectory vs newest committed BENCH_PR*.json =="
  # >25% slower on any tracked row fails the job; a noisy host can widen
  # the band with ALVC_BENCH_TOLERANCE (a fraction, e.g. 0.60).
  python3 scripts/bench_gate.py build/bench-smoke/BENCH_PR10.json
  echo "== bench smoke artifacts in build/bench-smoke/ =="
}

leg_scale_soak() {
  echo "== scale soak: sharded-vs-serial differential + million-VM smoke (Release) =="
  cmake -B build-scale -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-scale -j "$jobs" --target \
    orchestrator_sharded_differential_test faults_scale_soak_test

  echo "== sharded differential, shard counts {1,2,4,8} (reduced seed set) =="
  # CI runs fewer seeds than the local default (20) to bound wall clock;
  # override with ALVC_SHARD_DIFF_SEEDS.
  ALVC_SHARD_DIFF_SEEDS="${ALVC_SHARD_DIFF_SEEDS:-6}" ctest --test-dir build-scale \
    --output-on-failure -R 'ShardedDifferentialTest'

  echo "== million-VM smoke: 100k chains over 1M VMs under mixed faults =="
  ALVC_SCALE_SOAK=1 ctest --test-dir build-scale --output-on-failure \
    --timeout 3000 -R 'ScaleSoakTest'
}

# emit_bench_json <out.json> — runs the tracked benchmarks
# (bench_route_cache, bench_fig4_al_construction, and the mid-scale
# bench_sharded_control_plane serial/sharded cycles) and writes an
# alvc-bench-trajectory-v1 JSON: per benchmark name, the current cpu time
# in microseconds next to a "before" baseline and the resulting speedup.
# With ALVC_BENCH_SCALE=full, the million-VM sharded benchmark also runs
# (from the Release build-scale tree — Debug at that size is minutes of
# topology build alone) and its rows are merged in; CI runs without the
# env, so those rows show up as [gone] in the gate, which is non-fatal.
# Baseline resolution, in order:
#   1. $ALVC_BENCH_BASELINE_DIR/{route_cache,fig4,sharded}.json — raw
#      google-benchmark JSON captured on the pre-change tree;
#   2. the newest committed BENCH_PR*.json at the repo root (its `before`
#      values carry forward, so CI tracks drift against the trajectory);
#   3. null (no baseline available; speedup omitted).
emit_bench_json() {
  local out="$1"
  echo "== bench json: tracked benchmarks -> $out =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target \
    bench_route_cache bench_fig4_al_construction bench_sharded_control_plane
  local tmpdir
  tmpdir="$(mktemp -d)"
  ./build/bench/bench_route_cache \
    --benchmark_min_time=0.05 \
    --benchmark_out="$tmpdir/route_cache.json" \
    --benchmark_out_format=json
  ./build/bench/bench_fig4_al_construction \
    --benchmark_min_time=0.05 \
    --benchmark_filter='/512$' \
    --benchmark_out="$tmpdir/fig4.json" \
    --benchmark_out_format=json
  ALVC_BENCH_SCALE= ./build/bench/bench_sharded_control_plane \
    --benchmark_min_time=0.05 \
    --benchmark_out="$tmpdir/sharded.json" \
    --benchmark_out_format=json
  if [[ "${ALVC_BENCH_SCALE:-}" == "full" ]]; then
    echo "== bench json: million-VM sharded rows (Release build-scale) =="
    cmake -B build-scale -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-scale -j "$jobs" --target bench_sharded_control_plane
    ALVC_BENCH_SCALE=full ./build-scale/bench/bench_sharded_control_plane \
      --benchmark_filter='MillionVm' \
      --benchmark_out="$tmpdir/sharded_full.json" \
      --benchmark_out_format=json
  fi
  python3 - "$tmpdir" "$out" <<'PY'
import json, os, sys

tmpdir, out = sys.argv[1], sys.argv[2]
baseline_dir = os.environ.get("ALVC_BENCH_BASELINE_DIR", "")

def load_cpu_us(path):
    with open(path) as f:
        data = json.load(f)
    result = {}
    for b in data.get("benchmarks", []):
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        result[b["name"]] = b["cpu_time"] * scale
    return result

after = {"bench_route_cache": load_cpu_us(f"{tmpdir}/route_cache.json"),
         "bench_fig4_al_construction": load_cpu_us(f"{tmpdir}/fig4.json"),
         "bench_sharded_control_plane": load_cpu_us(f"{tmpdir}/sharded.json")}
full_path = os.path.join(tmpdir, "sharded_full.json")
if os.path.exists(full_path):
    after["bench_sharded_control_plane"].update(load_cpu_us(full_path))

before = {}
if baseline_dir:
    for bench, raw in (("bench_route_cache", "route_cache.json"),
                       ("bench_fig4_al_construction", "fig4.json"),
                       ("bench_sharded_control_plane", "sharded.json")):
        path = os.path.join(baseline_dir, raw)
        if os.path.exists(path):
            before[bench] = load_cpu_us(path)
else:
    import glob
    committed_paths = sorted(glob.glob("BENCH_PR*.json"), reverse=True)
    if committed_paths:
        with open(committed_paths[0]) as f:
            committed = json.load(f)
        for row in committed.get("benchmarks", []):
            if row.get("before_cpu_time_us") is not None:
                before.setdefault(row["bench"], {})[row["name"]] = row["before_cpu_time_us"]

rows = []
for bench in sorted(after):
    for name in after[bench]:
        b = before.get(bench, {}).get(name)
        row = {"bench": bench, "name": name,
               "before_cpu_time_us": round(b, 3) if b is not None else None,
               "after_cpu_time_us": round(after[bench][name], 3),
               "speedup": round(b / after[bench][name], 2) if b else None}
        rows.append(row)

with open(out, "w") as f:
    json.dump({"schema": "alvc-bench-trajectory-v1",
               "generated_by": "scripts/check.sh --bench-json",
               "benchmarks": rows}, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(rows)} benchmarks)")
PY
  rm -rf "$tmpdir"
}

static_only=0
ci_leg=""
bench_json_out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --static-only) static_only=1; shift ;;
    --ci)
      # An empty leg name must fail loudly: before this check, `--ci ""`
      # parsed fine and silently ran the FULL local gate instead of one leg.
      [[ $# -ge 2 && -n "$2" ]] || { echo "--ci requires a non-empty leg name" >&2; exit 2; }
      ci_leg="$2"; shift 2 ;;
    --bench-json)
      [[ $# -ge 2 ]] || { echo "--bench-json requires an output path" >&2; exit 2; }
      bench_json_out="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ -n "$bench_json_out" ]]; then
  emit_bench_json "$bench_json_out"
  exit 0
fi

if [[ -n "$ci_leg" ]]; then
  case "$ci_leg" in
    static) leg_lint; leg_analyze; leg_clang_static; leg_clang_tidy ;;
    analyze) leg_analyze ;;
    tier1) leg_tier1 ;;
    tsan) leg_tsan ;;
    asan) leg_asan ;;
    ubsan) leg_ubsan ;;
    telemetry) leg_telemetry ;;
    overload-soak) leg_overload_soak ;;
    elastic-soak) leg_elastic_soak ;;
    bench-smoke) leg_bench_smoke ;;
    scale-soak) leg_scale_soak ;;
    *) echo "unknown CI leg: $ci_leg (expected static, analyze, tier1, tsan, asan, ubsan, telemetry, overload-soak, elastic-soak, bench-smoke, scale-soak)" >&2
       exit 2 ;;
  esac
  echo "== CI leg '$ci_leg' passed =="
  exit 0
fi

leg_lint
leg_analyze
leg_clang_static
leg_clang_tidy

if [[ "$static_only" == "1" ]]; then
  echo "== static gate passed (--static-only) =="
  exit 0
fi

leg_tier1

if [[ "${ALVC_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (ALVC_SKIP_TSAN=1) =="
else
  leg_tsan
fi

if [[ "${ALVC_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== ASan pass skipped (ALVC_SKIP_ASAN=1) =="
else
  leg_asan
fi

if [[ "${ALVC_SKIP_TELEMETRY:-0}" == "1" ]]; then
  echo "== telemetry pass skipped (ALVC_SKIP_TELEMETRY=1) =="
else
  leg_telemetry
fi

if [[ "${ALVC_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "== UBSan pass skipped (ALVC_SKIP_UBSAN=1) =="
else
  leg_ubsan
fi

leg_overload_soak
leg_elastic_soak
leg_bench_smoke

echo "== all checks passed =="
