#!/usr/bin/env bash
# One-command gate: static analysis first, then configure + build + ctest,
# then the thread-safety suites again under ThreadSanitizer, the
# failure/recovery suites under AddressSanitizer, the telemetry subsystem
# with hooks compiled OFF (plus an ON-vs-OFF bit-identical seeded sim diff
# and a bench smoke), and the full suite under UndefinedBehaviorSanitizer.
#
# The static stage runs BEFORE any test and has three parts:
#   1. alvc_lint        — project rules (determinism, id arithmetic, naked
#                         discards, layering); always runs, failure is fatal.
#   2. -Wthread-safety  — clang thread-safety analysis of the ALVC_GUARDED_BY
#                         annotations, built with -DALVC_STATIC_ANALYSIS=ON;
#                         runs when clang++ is on PATH, else skipped with a
#                         warning (the annotations compile away on GCC).
#   3. clang-tidy       — .clang-tidy checks over src/; best-effort, runs
#                         when a clang-tidy binary is on PATH, never fatal
#                         on absence.
#
# Usage:
#   scripts/check.sh                    # static gate + full ctest + sanitizer legs
#   scripts/check.sh --static-only      # static gate only (fast pre-commit loop)
#   ALVC_SKIP_TSAN=1 scripts/check.sh   # skip the TSan pass (e.g. unsupported host)
#   ALVC_SKIP_ASAN=1 scripts/check.sh   # skip the ASan pass
#   ALVC_SKIP_UBSAN=1 scripts/check.sh  # skip the UBSan pass
#   ALVC_SKIP_TELEMETRY=1 scripts/check.sh  # skip the telemetry ON/OFF leg
#   ALVC_JOBS=8 scripts/check.sh        # override parallelism
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${ALVC_JOBS:-$(nproc 2>/dev/null || echo 2)}"
static_only=0
for arg in "$@"; do
  case "$arg" in
    --static-only) static_only=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== static: alvc_lint =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target alvc_lint
./build/tools/alvc_lint --exclude tests/tools/fixtures src tests tools

if command -v clang++ >/dev/null 2>&1; then
  echo "== static: clang -Wthread-safety (-DALVC_STATIC_ANALYSIS=ON) =="
  cmake -B build-static -S . -DALVC_STATIC_ANALYSIS=ON \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-static -j "$jobs"
else
  echo "== static: clang++ not found; thread-safety analysis skipped =="
  echo "   (annotations still compile away cleanly under the host compiler)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== static: clang-tidy (best effort) =="
  # compile_commands.json is exported by the plain configure above.
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  clang-tidy -p build --quiet "${tidy_sources[@]}"
else
  echo "== static: clang-tidy not found; tidy stage skipped (non-fatal) =="
fi

if [[ "$static_only" == "1" ]]; then
  echo "== static gate passed (--static-only) =="
  exit 0
fi

echo "== configure + build (plain) =="
cmake --build build -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${ALVC_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (ALVC_SKIP_TSAN=1) =="
else
  echo "== configure + build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DALVC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target \
    util_executor_test cluster_parallel_build_differential_test \
    cluster_degraded_cluster_test

  echo "== ctest -L sanitize (under TSan) =="
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L sanitize
fi

if [[ "${ALVC_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== ASan pass skipped (ALVC_SKIP_ASAN=1) =="
else
  echo "== configure + build (AddressSanitizer) =="
  cmake -B build-asan -S . -DALVC_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target \
    topology_failure_api_test cluster_failure_test cluster_degraded_cluster_test \
    orchestrator_failure_test faults_fault_injector_test faults_state_auditor_test \
    faults_chaos_soak_test

  echo "== ctest -L failures (under ASan) =="
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L failures
fi

if [[ "${ALVC_SKIP_TELEMETRY:-0}" == "1" ]]; then
  echo "== telemetry pass skipped (ALVC_SKIP_TELEMETRY=1) =="
else
  echo "== configure + build (-DALVC_TELEMETRY=OFF) =="
  cmake -B build-notelemetry -S . -DALVC_TELEMETRY=OFF >/dev/null
  cmake --build build-notelemetry -j "$jobs" --target \
    datacenter_sim telemetry_determinism_test bench_telemetry_overhead

  echo "== telemetry: hooks compile to no-ops and determinism holds when OFF =="
  ctest --test-dir build-notelemetry --output-on-failure -j "$jobs" \
    -R 'Telemetry(Determinism|Export)Test'

  echo "== telemetry: seeded sim output is bit-identical ON vs OFF =="
  # datacenter_sim is fully seeded; instrumentation must never perturb the
  # simulation itself, so the two builds' stdout must match byte-for-byte.
  ./build/examples/datacenter_sim > build/telemetry-on.out
  ./build-notelemetry/examples/datacenter_sim > build-notelemetry/telemetry-off.out
  diff build/telemetry-on.out build-notelemetry/telemetry-off.out
  ./build/examples/datacenter_sim > build/telemetry-on2.out
  diff build/telemetry-on.out build/telemetry-on2.out

  echo "== telemetry: overhead bench smoke (ON and OFF builds) =="
  cmake --build build -j "$jobs" --target bench_telemetry_overhead
  ./build/bench/bench_telemetry_overhead \
    --benchmark_min_time=0.01 --benchmark_filter='BM_(CounterAdd|HookMacro)' >/dev/null
  ./build-notelemetry/bench/bench_telemetry_overhead \
    --benchmark_min_time=0.01 --benchmark_filter='BM_(CounterAdd|HookMacro)' >/dev/null
fi

if [[ "${ALVC_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "== UBSan pass skipped (ALVC_SKIP_UBSAN=1) =="
else
  echo "== configure + build (UndefinedBehaviorSanitizer) =="
  cmake -B build-ubsan -S . -DALVC_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$jobs"

  echo "== ctest (full suite, under UBSan) =="
  ctest --test-dir build-ubsan --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="
