#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, then the
# thread-safety suites again under ThreadSanitizer, then the
# failure/recovery suites under AddressSanitizer.
#
# Usage:
#   scripts/check.sh             # plain build + full ctest + TSan + ASan legs
#   ALVC_SKIP_TSAN=1 scripts/check.sh   # skip the TSan pass (e.g. unsupported host)
#   ALVC_SKIP_ASAN=1 scripts/check.sh   # skip the ASan pass
#   ALVC_JOBS=8 scripts/check.sh        # override parallelism
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${ALVC_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure + build (plain) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${ALVC_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (ALVC_SKIP_TSAN=1) =="
else
  echo "== configure + build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DALVC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target \
    util_executor_test cluster_parallel_build_differential_test \
    cluster_degraded_cluster_test

  echo "== ctest -L sanitize (under TSan) =="
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L sanitize
fi

if [[ "${ALVC_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== ASan pass skipped (ALVC_SKIP_ASAN=1) =="
else
  echo "== configure + build (AddressSanitizer) =="
  cmake -B build-asan -S . -DALVC_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target \
    topology_failure_api_test cluster_failure_test cluster_degraded_cluster_test \
    orchestrator_failure_test faults_fault_injector_test faults_state_auditor_test \
    faults_chaos_soak_test

  echo "== ctest -L failures (under ASan) =="
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L failures
fi

echo "== all checks passed =="
