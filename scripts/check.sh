#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, then the
# thread-safety suites again under ThreadSanitizer.
#
# Usage:
#   scripts/check.sh             # plain build + full ctest + TSan 'sanitize' label
#   ALVC_SKIP_TSAN=1 scripts/check.sh   # skip the TSan pass (e.g. unsupported host)
#   ALVC_JOBS=8 scripts/check.sh        # override parallelism
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${ALVC_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure + build (plain) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${ALVC_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (ALVC_SKIP_TSAN=1) =="
  exit 0
fi

echo "== configure + build (ThreadSanitizer) =="
cmake -B build-tsan -S . -DALVC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs" --target \
  util_executor_test cluster_parallel_build_differential_test

echo "== ctest -L sanitize (under TSan) =="
ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L sanitize

echo "== all checks passed =="
